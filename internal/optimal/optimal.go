// Package optimal computes exact minimum-cost schedules for small request
// sets by exhaustive search, providing the reference point for the paper's
// empirical claim that the heuristic stays "within the bound of 30% from
// the optimal solution on the average" (§5.5).
//
// The search is exact within the cheapest-route policy class: streams
// follow minimum-rate routes from their supply point to the destination
// (deliberately detouring a stream to seed a cache on an off-route node is
// outside the class, for both the heuristic and this reference), caches may
// open at any storage a stream touches, and capacity is unconstrained —
// the same assumptions as the individual video scheduling phase. Within
// that class every choice sequence is enumerated with branch-and-bound.
package optimal

import (
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// MaxRequests bounds the exhaustive search; the branching factor is
// 1 + #copies and copies multiply with every served request, so the search
// is exponential in the request count.
const MaxRequests = 7

// copyState is one live cached copy during the search.
type copyState struct {
	loc  topology.NodeID
	load simtime.Time
	last simtime.Time
}

// choice encodes one request's supply decision: -1 for the warehouse,
// otherwise an index into the copy list at that point of the search.
type choice = int

const fromWarehouse choice = -1

type searcher struct {
	m        *cost.Model
	topo     *topology.Topology
	video    media.Video
	reqs     []workload.Request
	dsts     []topology.NodeID
	bestCost units.Money
	bestSeq  []choice
	seq      []choice
	copies   []copyState
}

// ScheduleFile exhaustively finds the minimum-cost schedule for one file's
// requests (at most MaxRequests of them). It returns the schedule and its
// exact cost.
func ScheduleFile(m *cost.Model, video media.VideoID, reqs []workload.Request) (*schedule.FileSchedule, units.Money, error) {
	if len(reqs) > MaxRequests {
		return nil, 0, fmt.Errorf("optimal: %d requests exceed the exhaustive-search bound %d", len(reqs), MaxRequests)
	}
	topo := m.Book().Topology()
	ordered := append([]workload.Request(nil), reqs...)
	workload.SortChronological(ordered)
	for _, r := range ordered {
		if r.Video != video {
			return nil, 0, fmt.Errorf("optimal: request for video %d in batch for %d", r.Video, video)
		}
		if int(r.User) < 0 || int(r.User) >= topo.NumUsers() {
			return nil, 0, fmt.Errorf("optimal: unknown user %d", r.User)
		}
	}
	s := &searcher{
		m:        m,
		topo:     topo,
		video:    m.Catalog().Video(video),
		reqs:     ordered,
		bestCost: units.Money(math.Inf(1)),
		seq:      make([]choice, len(ordered)),
	}
	s.dsts = make([]topology.NodeID, len(ordered))
	for i, r := range ordered {
		s.dsts[i] = topo.User(r.User).Local
	}
	s.dfs(0, 0)
	if math.IsInf(float64(s.bestCost), 1) && len(ordered) > 0 {
		return nil, 0, fmt.Errorf("optimal: no feasible schedule found")
	}
	fs, err := s.replay()
	if err != nil {
		return nil, 0, err
	}
	got := m.FileCost(fs)
	if !got.ApproxEqual(s.bestCost, 1e-6*(1+math.Abs(float64(s.bestCost)))) {
		return nil, 0, fmt.Errorf("optimal: replay cost %v disagrees with search cost %v", got, s.bestCost)
	}
	return fs, got, nil
}

// dfs explores supply choices for request i with the accumulated cost so
// far, pruning branches that already exceed the best complete schedule.
func (s *searcher) dfs(i int, acc units.Money) {
	if acc >= s.bestCost {
		return
	}
	if i == len(s.reqs) {
		s.bestCost = acc
		s.bestSeq = append(s.bestSeq[:0], s.seq[:i]...)
		return
	}
	t := s.reqs[i].Start
	dst := s.dsts[i]

	// Option: stream from the warehouse.
	s.seq[i] = fromWarehouse
	s.branch(i, acc+s.m.TransferCost(s.video.ID, s.topo.Warehouse(), dst), s.topo.Warehouse(), t, dst)

	// Option: extend an existing copy. Iterate by index; the copy list
	// only ever grows within a branch and is truncated on backtrack.
	nCopies := len(s.copies)
	for k := 0; k < nCopies; k++ {
		c := s.copies[k]
		if c.load > t {
			continue
		}
		extend := extendCost(s.m, s.video, c, t)
		transfer := s.m.TransferCost(s.video.ID, c.loc, dst)
		s.seq[i] = k
		prevLast := s.copies[k].last
		if t > s.copies[k].last {
			s.copies[k].last = t
		}
		s.branch(i, acc+extend+transfer, c.loc, t, dst)
		s.copies[k].last = prevLast
	}
}

// branch opens the post-serve copies along the stream's route and recurses.
func (s *searcher) branch(i int, acc units.Money, src topology.NodeID, t simtime.Time, dst topology.NodeID) {
	route, err := s.m.Table().Route(src, dst)
	if err != nil {
		return
	}
	added := 0
	for _, n := range route {
		if n == src || s.topo.Node(n).Kind != topology.KindStorage {
			continue
		}
		if s.hasCopy(n, t) {
			continue
		}
		s.copies = append(s.copies, copyState{loc: n, load: t, last: t})
		added++
	}
	s.dfs(i+1, acc)
	s.copies = s.copies[:len(s.copies)-added]
}

func (s *searcher) hasCopy(n topology.NodeID, load simtime.Time) bool {
	for _, c := range s.copies {
		if c.loc == n && c.load == load {
			return true
		}
	}
	return false
}

func extendCost(m *cost.Model, v media.Video, c copyState, t simtime.Time) units.Money {
	srate := m.Book().SRate(c.loc)
	oldCost := cost.SpanCost(srate, v.Size, v.Playback, c.last.Sub(c.load))
	newCost := cost.SpanCost(srate, v.Size, v.Playback, t.Sub(c.load))
	if newCost < oldCost {
		return 0
	}
	return newCost - oldCost
}

// replay reconstructs the winning choice sequence as a FileSchedule by
// re-serving each request with its recorded supply decision. The copy list
// evolves exactly as in the search (same route-order copy creation), so
// the recorded indices resolve to the same copies.
func (s *searcher) replay() (*schedule.FileSchedule, error) {
	fs := &schedule.FileSchedule{Video: s.video.ID}
	type liveCopy struct {
		copyState
		residency int // index into fs.Residencies
	}
	var copies []liveCopy
	for i, r := range s.reqs {
		var src topology.NodeID
		srcRes := schedule.NoResidency
		ch := s.bestSeq[i]
		if ch == fromWarehouse {
			src = s.topo.Warehouse()
		} else {
			if ch < 0 || ch >= len(copies) {
				return nil, fmt.Errorf("optimal: replay choice %d out of range", ch)
			}
			src = copies[ch].loc
			srcRes = copies[ch].residency
		}
		route, err := s.m.Table().Route(src, s.dsts[i])
		if err != nil {
			return nil, err
		}
		di := len(fs.Deliveries)
		fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
			Video: s.video.ID, User: r.User, Start: r.Start,
			Route: route, SourceResidency: srcRes,
		})
		if srcRes != schedule.NoResidency {
			c := &fs.Residencies[srcRes]
			c.Services = append(c.Services, di)
			if r.Start > c.LastService {
				c.LastService = r.Start
			}
			if r.Start > copies[ch].last {
				copies[ch].last = r.Start
			}
		}
		for _, n := range route {
			if n == src || s.topo.Node(n).Kind != topology.KindStorage {
				continue
			}
			dup := false
			for _, c := range copies {
				if c.loc == n && c.load == r.Start {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			fs.Residencies = append(fs.Residencies, schedule.Residency{
				Video: s.video.ID, Loc: n, Src: src,
				Load: r.Start, LastService: r.Start, FedBy: di,
			})
			copies = append(copies, liveCopy{
				copyState: copyState{loc: n, load: r.Start, last: r.Start},
				residency: len(fs.Residencies) - 1,
			})
		}
	}
	pruneUnused(fs)
	return fs, nil
}

// pruneUnused removes residencies without services, as ivs does.
func pruneUnused(fs *schedule.FileSchedule) {
	remap := make([]int, len(fs.Residencies))
	kept := fs.Residencies[:0]
	for j := range fs.Residencies {
		if len(fs.Residencies[j].Services) == 0 {
			remap[j] = -1
			continue
		}
		remap[j] = len(kept)
		kept = append(kept, fs.Residencies[j])
	}
	fs.Residencies = kept
	for i := range fs.Deliveries {
		if sr := fs.Deliveries[i].SourceResidency; sr != schedule.NoResidency {
			fs.Deliveries[i].SourceResidency = remap[sr]
		}
	}
}

// Gap measures the heuristic's optimality gap on one file: it runs both
// the greedy and the exhaustive search and returns greedy/optimal − 1
// (0 means the greedy was optimal).
func Gap(m *cost.Model, video media.VideoID, reqs []workload.Request) (float64, error) {
	greedy, err := ivs.ScheduleFile(m, video, reqs, ivs.Options{})
	if err != nil {
		return 0, err
	}
	_, best, err := ScheduleFile(m, video, reqs)
	if err != nil {
		return 0, err
	}
	g := m.FileCost(greedy)
	if best <= 0 {
		if g <= 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	if g < best-units.Money(1e-6) {
		return 0, fmt.Errorf("optimal: greedy %v beat the exhaustive optimum %v", g, best)
	}
	return float64(g)/float64(best) - 1, nil
}
