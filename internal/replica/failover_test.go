package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// The failover property test, in the style of the horizon package's
// TestCrashRecoverEveryRecordBoundary: kill the primary at journal-record
// boundaries — under clean and faulty replication transports — promote
// the standby, finish the workload on it, and require the promoted node's
// final state to be byte-identical to an uninterrupted single-node run.

func failoverParams() experiment.Params {
	return experiment.Params{
		Storages:        4,
		UsersPerStorage: 3,
		Titles:          10,
		CapacityGB:      2,
		RequestsPerUser: 2,
		Seed:            7,
	}
}

// op is one scripted operation; each journals exactly one WAL record, so
// op boundaries are record boundaries.
type op struct {
	submit bool
	at     simtime.Time
	req    workload.Request
	to     simtime.Time
}

// buildOps scripts the seeded workload: submissions in chronological
// order with an Advance closing each epoch.
func buildOps(r *experiment.Rig, epochs int) []op {
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	step := simtime.Duration(int64(window) / int64(epochs))

	var ops []op
	next := 0
	for k := 1; k <= epochs; k++ {
		h := simtime.Time(int64(step) * int64(k))
		for next < len(reqs) && reqs[next].Start < h.Add(step) {
			ops = append(ops, op{submit: true, at: reqs[next].Start, req: reqs[next]})
			next++
		}
		ops = append(ops, op{to: h})
	}
	return ops
}

// fingerprint captures everything a failover must preserve, as JSON so
// the comparison is byte-exact.
func fingerprint(t *testing.T, svc *horizon.Service) string {
	t.Helper()
	blob, err := json.Marshal(map[string]any{
		"committed": svc.Committed(),
		"epoch":     svc.Epoch(),
		"horizon":   svc.Horizon(),
		"cost":      svc.Cost(),
		"pending":   svc.Pending(),
		"accepted":  svc.Accepted(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func applyLocal(t *testing.T, svc *horizon.Service, o op) {
	t.Helper()
	var err error
	if o.submit {
		_, err = svc.Submit(o.at, o.req)
	} else {
		_, err = svc.Advance(context.Background(), o.to)
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", o, err)
	}
}

// driveHTTP sends one op to a serving node as a client would.
func driveHTTP(t *testing.T, base string, o op) {
	t.Helper()
	ctx := context.Background()
	var opts retryhttp.Options
	var err error
	if o.submit {
		err = retryhttp.PostJSON(ctx, opts, base+"/v1/reservations",
			server.ReservationRequest{User: o.req.User, Video: o.req.Video, Start: o.req.Start}, nil)
	} else {
		err = retryhttp.PostJSON(ctx, opts, base+"/v1/advance", server.AdvanceRequest{To: o.to}, nil)
	}
	if err != nil {
		t.Fatalf("drive %+v: %v", o, err)
	}
}

// referenceRun replays every op on one uninterrupted in-memory service.
func referenceRun(t *testing.T, r *experiment.Rig, ops []op) string {
	t.Helper()
	ref := horizon.New(r.Model, horizon.Config{})
	for _, o := range ops {
		applyLocal(t, ref, o)
	}
	return fingerprint(t, ref)
}

// faultMode names a replication-transport fault pattern.
type faultMode string

const (
	faultNone      faultMode = "clean"
	faultBlackhole faultMode = "blackhole"
	faultDelay     faultMode = "delay"
	faultDuplicate faultMode = "duplicate"
)

// faultRT wraps a RoundTripper with deterministic fault injection:
// blackhole fails every other request at the transport layer (the retry
// loop must recover), delay adds latency, and duplicate re-delivers
// previously shipped records prepended to each batch (the applier must
// skip them idempotently).
type faultRT struct {
	base http.RoundTripper
	mode faultMode

	mu   sync.Mutex
	n    int
	seen []replica.Record
}

func (f *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	switch f.mode {
	case faultBlackhole:
		if n%2 == 1 {
			return nil, fmt.Errorf("faultRT: request %d blackholed", n)
		}
	case faultDelay:
		time.Sleep(time.Duration(n%3) * time.Millisecond)
	}
	resp, err := f.base.RoundTrip(req)
	if err != nil || f.mode != faultDuplicate || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	// Duplicate delivery: replay the last few shipped records in front of
	// the fresh batch, preserving sequence order.
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	var batch replica.Batch
	if json.Unmarshal(body, &batch) == nil {
		f.mu.Lock()
		dup := append(append([]replica.Record(nil), f.seen...), batch.Records...)
		f.seen = append(f.seen, batch.Records...)
		if len(f.seen) > 8 {
			f.seen = f.seen[len(f.seen)-8:]
		}
		f.mu.Unlock()
		batch.Records = dup
		if reencoded, merr := json.Marshal(batch); merr == nil {
			body = reencoded
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// newFollower builds a durable follower service plus its shipper, with
// the given transport fault mode against the primary at base.
func newFollower(t *testing.T, r *experiment.Rig, cfg horizon.Config, base string, mode faultMode) (*horizon.Service, *replica.Shipper, *replica.Leadership) {
	t.Helper()
	svc, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lead := replica.NewLeadership(replica.RoleFollower, 0)
	client := &http.Client{Transport: &faultRT{base: http.DefaultTransport, mode: mode}}
	sh := replica.NewShipper(svc, lead, replica.ShipperConfig{
		Source: base,
		Retry:  retryhttp.Options{Client: client, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	return svc, sh, lead
}

func runFailover(t *testing.T, r *experiment.Rig, ops []op, boundary int, mode faultMode, want string) {
	t.Helper()
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := server.NewWithOptions(r.Model, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary)
	fsvc, sh, lead := newFollower(t, r, cfg, ts.URL, mode)
	defer fsvc.Close()

	for _, o := range ops[:boundary] {
		driveHTTP(t, ts.URL, o)
	}
	if err := sh.Drain(context.Background()); err != nil {
		t.Fatalf("drain at boundary %d: %v", boundary, err)
	}
	if st := sh.Status(); !st.Synced || !st.CaughtUp || st.Lag != 0 {
		t.Fatalf("follower not caught up after drain: %+v", st)
	}

	// The primary dies: only the standby's state survives.
	ts.Close()
	primary.Close()

	// Promotion re-verifies the replicated schedule with the audit bundle
	// before the node takes leadership — the same gate Recover applies.
	if err := fsvc.VerifyCommitted(); err != nil {
		t.Fatalf("promotion audit at boundary %d: %v", boundary, err)
	}
	if _, err := lead.Promote(); err != nil {
		t.Fatal(err)
	}

	for _, o := range ops[boundary:] {
		applyLocal(t, fsvc, o)
	}
	if got := fingerprint(t, fsvc); got != want {
		t.Errorf("boundary %d (%s): promoted state differs from uninterrupted run:\n got %.200s...\nwant %.200s...",
			boundary, mode, got, want)
	}
}

// TestFailoverAtRecordBoundaries is the headline property: for every
// journal-record boundary (stride-sampled under fault modes and -short),
// killing the primary there and failing over to the standby yields a
// plan byte-identical to a run that never failed.
func TestFailoverAtRecordBoundaries(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	ops := buildOps(r, 3)
	want := referenceRun(t, r, ops)

	for _, mode := range []faultMode{faultNone, faultBlackhole, faultDelay, faultDuplicate} {
		t.Run(string(mode), func(t *testing.T) {
			stride := 1
			if mode != faultNone || testing.Short() {
				stride = 5
			}
			for i := 0; i <= len(ops); i += stride {
				t.Run(fmt.Sprintf("boundary=%d", i), func(t *testing.T) {
					runFailover(t, r, ops, i, mode, want)
				})
			}
			// Always include the final boundary: a failover with nothing
			// left to re-drive must still reproduce the whole plan.
			if (len(ops))%stride != 0 {
				t.Run(fmt.Sprintf("boundary=%d", len(ops)), func(t *testing.T) {
					runFailover(t, r, ops, len(ops), mode, want)
				})
			}
		})
	}
}

// recordingRT records the WAL-fetch URLs the shipper issues.
type recordingRT struct {
	base http.RoundTripper
	mu   sync.Mutex
	urls []string
}

func (rt *recordingRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.urls = append(rt.urls, req.URL.String())
	rt.mu.Unlock()
	return rt.base.RoundTrip(req)
}

// A follower restarted mid-stream resumes shipping from its applied
// sequence — never from zero — and still converges byte-identically.
func TestFollowerRestartResumesMidStream(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	ops := buildOps(r, 3)
	want := referenceRun(t, r, ops)
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}

	primary, err := server.NewWithOptions(r.Model, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := httptest.NewServer(primary)
	defer ts.Close()

	followerDir := t.TempDir()
	fsvc, err := horizon.Recover(followerDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lead := replica.NewLeadership(replica.RoleFollower, 0)
	sh := replica.NewShipper(fsvc, lead, replica.ShipperConfig{Source: ts.URL})

	// First half of the stream, then the follower process "restarts".
	half := len(ops) / 2
	for _, o := range ops[:half] {
		driveHTTP(t, ts.URL, o)
	}
	ctx := context.Background()
	if err := sh.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	applied := fsvc.AppliedSeq()
	if applied == 0 {
		t.Fatal("nothing applied before the restart")
	}
	if err := fsvc.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery reconstructs the applied position from the follower's own
	// journal; the fresh shipper must resume after it.
	re, err := horizon.Recover(followerDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.AppliedSeq() != applied {
		t.Fatalf("restart lost applied seq: %d, want %d", re.AppliedSeq(), applied)
	}
	rec := &recordingRT{base: http.DefaultTransport}
	sh2 := replica.NewShipper(re, replica.NewLeadership(replica.RoleFollower, 0), replica.ShipperConfig{
		Source: ts.URL,
		Retry:  retryhttp.Options{Client: &http.Client{Transport: rec}},
	})
	for _, o := range ops[half:] {
		driveHTTP(t, ts.URL, o)
	}
	if err := sh2.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	urls := append([]string(nil), rec.urls...)
	rec.mu.Unlock()
	if len(urls) == 0 {
		t.Fatal("no shipping requests recorded")
	}
	if !strings.Contains(urls[0], fmt.Sprintf("after=%d&", applied)) {
		t.Fatalf("restarted shipper resumed from %q, want after=%d", urls[0], applied)
	}
	for _, u := range urls {
		if strings.Contains(u, "after=0&") {
			t.Fatalf("restarted shipper re-fetched from zero: %q", u)
		}
	}
	if got := fingerprint(t, re); got != want {
		t.Fatal("restarted follower diverged from uninterrupted run")
	}
}

// A batch delivered twice applies exactly once: the second delivery is
// skipped record-by-record and leaves both state and counters untouched.
func TestDuplicateBatchDeliveryIdempotent(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	ops := buildOps(r, 2)
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := server.NewWithOptions(r.Model, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := httptest.NewServer(primary)
	defer ts.Close()
	for _, o := range ops {
		driveHTTP(t, ts.URL, o)
	}

	fsvc, sh, _ := newFollower(t, r, cfg, ts.URL, faultNone)
	defer fsvc.Close()
	ctx := context.Background()
	var batch replica.Batch
	if err := retryhttp.GetJSON(ctx, retryhttp.Options{},
		ts.URL+"/v1/replication/wal?after=0&epoch=0&max=0", &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Records) != len(ops) {
		t.Fatalf("batch has %d records, want %d", len(batch.Records), len(ops))
	}

	n, err := sh.ApplyBatch(ctx, batch)
	if err != nil || n != len(ops) {
		t.Fatalf("first delivery applied %d (%v), want %d", n, err, len(ops))
	}
	before := fingerprint(t, fsvc)
	n, err = sh.ApplyBatch(ctx, batch)
	if err != nil || n != 0 {
		t.Fatalf("duplicate delivery applied %d (%v), want 0", n, err)
	}
	if got := fingerprint(t, fsvc); got != before {
		t.Fatal("duplicate delivery mutated state")
	}
	if st := sh.Status(); st.RecordsApplied != uint64(len(ops)) {
		t.Fatalf("RecordsApplied %d after duplicate delivery, want %d", st.RecordsApplied, len(ops))
	}
}

// A corrupted record on the wire must be refused before it reaches the
// applier.
func TestShipperRefusesCorruptRecord(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := server.NewWithOptions(r.Model, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := httptest.NewServer(primary)
	defer ts.Close()
	driveHTTP(t, ts.URL, op{submit: true, at: r.Requests[0].Start, req: r.Requests[0]})

	fsvc, sh, _ := newFollower(t, r, cfg, ts.URL, faultNone)
	defer fsvc.Close()
	ctx := context.Background()
	var batch replica.Batch
	if err := retryhttp.GetJSON(ctx, retryhttp.Options{},
		ts.URL+"/v1/replication/wal?after=0&epoch=0&max=0", &batch); err != nil {
		t.Fatal(err)
	}
	batch.Records[0].Payload[0] ^= 0xFF
	if _, err := sh.ApplyBatch(ctx, batch); err == nil {
		t.Fatal("corrupt record applied")
	}
	if fsvc.AppliedSeq() != 0 {
		t.Fatal("corrupt record advanced the applied sequence")
	}
}

// Replication from an in-memory primary is refused with a clear error:
// there is no journal to ship.
func TestShippingFromInMemoryPrimaryFails(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	primary, err := server.NewWithOptions(r.Model, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := httptest.NewServer(primary)
	defer ts.Close()

	fsvc, sh, _ := newFollower(t, r, horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}, ts.URL, faultNone)
	defer fsvc.Close()
	_, err = sh.Poll(context.Background())
	if err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("in-memory primary shipped: %v", err)
	}
}
