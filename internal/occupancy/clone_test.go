package occupancy

import (
	"testing"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// snapshot captures the observable state of a node: the occupancy at every
// breakpoint, which pins both membership and spans.
func snapshot(l *Ledger, node topology.NodeID) map[simtime.Time]float64 {
	out := make(map[simtime.Time]float64)
	for _, t := range l.breakpoints(node, nil) {
		out[t] = l.SpaceAt(node, t)
	}
	return out
}

func equalSnapshots(a, b map[simtime.Time]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for t, s := range a {
		if bs, ok := b[t]; !ok || bs != s {
			return false
		}
	}
	return true
}

// TestCloneCopyOnWrite drives every mutator against a clone and against the
// source and checks the other side never observes the change — the
// correctness contract the lazy Clone must preserve.
func TestCloneCopyOnWrite(t *testing.T) {
	topo, cat := fixture(t)
	is1, is2 := topology.NodeID(1), topology.NodeID(2)

	build := func() *Ledger {
		l := NewLedger(topo, cat)
		l.Add(Ref{0, 0}, res(0, is1, 0, 200))
		l.Add(Ref{0, 1}, res(0, is2, 50, 150))
		l.Add(Ref{1, 0}, res(1, is1, 100, 150))
		return l
	}

	mutate := map[string]func(l *Ledger){
		"add":          func(l *Ledger) { l.Add(Ref{1, 1}, res(1, is1, 300, 400)) },
		"update":       func(l *Ledger) { l.Update(Ref{0, 0}, res(0, is1, 0, 500)) },
		"relocate":     func(l *Ledger) { l.Update(Ref{0, 0}, res(0, is2, 0, 200)) },
		"remove":       func(l *Ledger) { l.Remove(Ref{1, 0}) },
		"remove-video": func(l *Ledger) { l.RemoveVideo(0) },
	}

	for name, fn := range mutate {
		// Mutating the clone must not leak into the source.
		src := build()
		before1, before2 := snapshot(src, is1), snapshot(src, is2)
		cl := src.Clone()
		fn(cl)
		if !equalSnapshots(snapshot(src, is1), before1) || !equalSnapshots(snapshot(src, is2), before2) {
			t.Errorf("%s: clone mutation leaked into source", name)
		}

		// Mutating the source must not leak into the clone.
		src = build()
		cl = src.Clone()
		want1, want2 := snapshot(cl, is1), snapshot(cl, is2)
		fn(src)
		if !equalSnapshots(snapshot(cl, is1), want1) || !equalSnapshots(snapshot(cl, is2), want2) {
			t.Errorf("%s: source mutation leaked into clone", name)
		}
	}
}

// TestCloneOfClone checks independence through a chain of clones, the
// shape the SORP loop produces when a winning candidate's ledger becomes
// the next iteration's base.
func TestCloneOfClone(t *testing.T) {
	topo, cat := fixture(t)
	is1 := topology.NodeID(1)
	a := NewLedger(topo, cat)
	a.Add(Ref{0, 0}, res(0, is1, 0, 200))

	b := a.Clone()
	c := b.Clone()
	c.Add(Ref{1, 0}, res(1, is1, 100, 150))
	b.RemoveVideo(0)

	if got := a.NumEntries(is1); got != 1 {
		t.Errorf("root ledger: %d entries, want 1", got)
	}
	if got := b.NumEntries(is1); got != 0 {
		t.Errorf("middle clone: %d entries, want 0", got)
	}
	if got := c.NumEntries(is1); got != 2 {
		t.Errorf("leaf clone: %d entries, want 2", got)
	}
}

// BenchmarkLedgerClone measures the clone + single-video teardown pattern
// of sorp.rescheduleFile: with copy-on-write this is O(nodes) plus copying
// only the nodes that hold the victim.
func BenchmarkLedgerClone(b *testing.B) {
	topo, cat := fixture(b)
	is1, is2 := topology.NodeID(1), topology.NodeID(2)
	l := NewLedger(topo, cat)
	for i := 0; i < 500; i++ {
		node := is1
		if i%2 == 0 {
			node = is2
		}
		l.Add(Ref{Video: 0, Index: i}, res(0, node, simtime.Time(i), simtime.Time(i+50)))
	}
	l.Add(Ref{Video: 1, Index: 0}, res(1, is1, 0, 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := l.Clone()
		tmp.RemoveVideo(1)
	}
}
