// Command vspserve runs the Video-On-Reservation scheduling service over
// HTTP for a fixed infrastructure.
//
// Usage:
//
//	vspserve -topo topo.json -catalog catalog.json -srate 5 -nrate 500 -addr :8080
//
// then:
//
//	curl -s localhost:8080/v1/topology
//	curl -s -X POST localhost:8080/v1/schedule \
//	     -d '{"requests":[{"User":0,"Video":3,"Start":3600}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/server"
)

func main() {
	var (
		topoPath = flag.String("topo", "", "topology JSON (required)")
		catPath  = flag.String("catalog", "", "catalog JSON (required)")
		srate    = flag.Float64("srate", 5, "storage charging rate ($/GB·hour)")
		nrate    = flag.Float64("nrate", 500, "network charging rate ($/GB)")
		addr     = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *topoPath == "" || *catPath == "" {
		fmt.Fprintln(os.Stderr, "vspserve: -topo and -catalog are required")
		os.Exit(1)
	}
	topo, err := cli.LoadTopology(*topoPath)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	cat, err := cli.LoadCatalog(*catPath)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	model := cli.BuildModel(topo, cat, *srate, *nrate)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(model),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 120 * time.Second,
	}
	log.Printf("vspserve: %d storages, %d users, %d titles; listening on %s",
		topo.NumStorages(), topo.NumUsers(), cat.Len(), *addr)
	log.Fatal(srv.ListenAndServe())
}
