package units

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vodsim/vsp/internal/simtime"
)

func TestBytesConstruction(t *testing.T) {
	if GBf(2.5) != 2500*MB {
		t.Errorf("GBf(2.5) = %d, want %d", GBf(2.5), 2500*MB)
	}
	if GBf(0) != 0 {
		t.Error("GBf(0) must be 0")
	}
	if got := Bytes(3300 * 1000 * 1000).GBytes(); math.Abs(got-3.3) > 1e-9 {
		t.Errorf("GBytes = %g, want 3.3", got)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{500, "500B"},
		{2 * KB, "2.00KB"},
		{2500 * MB, "2.50GB"},
		{3 * TB, "3.00TB"},
		{-2 * GB, "-2.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidth(t *testing.T) {
	r := Mbps(6)
	if math.Abs(float64(r)-750000) > 1e-9 {
		t.Errorf("Mbps(6) = %v bytes/s, want 750000", float64(r))
	}
	if math.Abs(r.Mbit()-6) > 1e-12 {
		t.Errorf("Mbit round trip = %g", r.Mbit())
	}
	// The paper's worked example: 6 Mbps for 90 minutes = 4.05e9 bytes.
	got := r.Over(90 * simtime.Minute)
	if got != Bytes(4.05e9) {
		t.Errorf("6Mbps over 90min = %d, want 4.05e9", got)
	}
}

func TestMoney(t *testing.T) {
	if Cents(100) != Money(1) {
		t.Error("Cents(100) must be $1")
	}
	m := Money(259.2)
	if m.String() != "$259.2000" {
		t.Errorf("String = %q", m.String())
	}
	if !m.ApproxEqual(Money(259.2000004), 1e-3) {
		t.Error("ApproxEqual within tolerance failed")
	}
	if m.ApproxEqual(Money(259.3), 1e-3) {
		t.Error("ApproxEqual outside tolerance succeeded")
	}
	if !m.IsFinite() {
		t.Error("finite amount reported non-finite")
	}
	if Money(math.NaN()).IsFinite() || Money(math.Inf(1)).IsFinite() {
		t.Error("NaN/Inf must be non-finite")
	}
}

func TestPropertyBandwidthOverLinear(t *testing.T) {
	f := func(mbit uint16, secs uint16) bool {
		r := Mbps(float64(mbit))
		d := simtime.Duration(secs)
		got := r.Over(d)
		want := Bytes(math.Round(float64(mbit) * 1e6 / 8 * float64(secs)))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
