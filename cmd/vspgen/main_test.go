package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/workload"
)

func topoOpts(gen string) genOptions {
	return genOptions{kind: "topology", gen: gen, storages: 5, users: 3,
		capacityGB: 8, fanout: 2, extraEdges: 4, seed: 7}
}

func genTopology(t *testing.T, gen string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, topoOpts(gen)); err != nil {
		t.Fatalf("run topology %s: %v", gen, err)
	}
	return sb.String()
}

func TestGenerateTopologies(t *testing.T) {
	for _, gen := range []string{"metro", "star", "chain", "tree", "ring", "random"} {
		out := genTopology(t, gen)
		topo, err := topology.Decode(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: decode: %v", gen, err)
		}
		if topo.NumStorages() != 5 || topo.NumUsers() != 15 {
			t.Errorf("%s: %d storages, %d users", gen, topo.NumStorages(), topo.NumUsers())
		}
	}
	var sb strings.Builder
	if err := run(&sb, topoOpts("bogus")); err == nil {
		t.Error("expected unknown generator error")
	}
}

func TestGenerateCatalog(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, genOptions{kind: "catalog", titles: 25, meanGB: 3.3, seed: 7}); err != nil {
		t.Fatalf("run catalog: %v", err)
	}
	var videos []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &videos); err != nil {
		t.Fatal(err)
	}
	if len(videos) != 25 {
		t.Errorf("titles = %d", len(videos))
	}
}

// writeModel generates a topology and catalog pair into dir.
func writeModel(t *testing.T, dir string) (topoPath, catPath string) {
	t.Helper()
	topoPath = filepath.Join(dir, "topo.json")
	if err := os.WriteFile(topoPath, []byte(genTopology(t, "star")), 0o644); err != nil {
		t.Fatal(err)
	}
	var catBuf strings.Builder
	if err := run(&catBuf, genOptions{kind: "catalog", titles: 10, meanGB: 3.3, seed: 7}); err != nil {
		t.Fatal(err)
	}
	catPath = filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(catPath, []byte(catBuf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return topoPath, catPath
}

func TestGenerateWorkloadFromFiles(t *testing.T) {
	topoP, catP := writeModel(t, t.TempDir())
	base := genOptions{kind: "workload", topoPath: topoP, catPath: catP,
		alpha: 0.271, windowH: 6, rpu: 2, seed: 7}
	for _, arrival := range []string{"uniform", "peak", "slotted"} {
		o := base
		o.arrival = arrival
		var sb strings.Builder
		if err := run(&sb, o); err != nil {
			t.Fatalf("workload %s: %v", arrival, err)
		}
		var set workload.Set
		if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
			t.Fatal(err)
		}
		if len(set) != 30 { // 15 users × 2 rpu
			t.Errorf("%s: requests = %d", arrival, len(set))
		}
	}
	o := base
	o.arrival = "bogus"
	var sb strings.Builder
	if err := run(&sb, o); err == nil {
		t.Error("expected unknown arrival error")
	}
	o = base
	o.arrival = "uniform"
	o.topoPath, o.catPath = "", ""
	if err := run(&sb, o); err == nil {
		t.Error("expected missing-paths error")
	}
}

// The trace kind streams a structured pattern: both formats parse back
// through the trace readers with the exact request count, and the flash/
// window specs round-trip through the flag grammar.
func TestGenerateTraceStreams(t *testing.T) {
	dir := t.TempDir()
	topoP, catP := writeModel(t, dir)
	topo, err := loadTopology(topoP)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := loadCatalog(catP)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "jsonl"} {
		outP := filepath.Join(dir, "trace."+format)
		o := genOptions{
			kind: "trace", topoPath: topoP, catPath: catP,
			alpha: 0.271, seed: 7,
			requests: 500, spanHours: 12, slotMinutes: 10,
			diurnal: 0.5, diurnalPeakH: 8,
			flashSpecs:  "6h:3:2:0.5",
			windowSpecs: "1:2:0.5",
			driftHours:  2, churnHours: 4, churnFraction: 0.1,
			format: format, outPath: outP,
		}
		if err := run(os.Stderr, o); err != nil {
			t.Fatalf("trace %s: %v", format, err)
		}
		f, err := os.Open(outP)
		if err != nil {
			t.Fatal(err)
		}
		var tr workload.TraceReader
		if format == "csv" {
			tr = workload.NewCSVTraceReader(f, topo, cat)
		} else {
			tr = workload.NewJSONLTraceReader(f, topo, cat)
		}
		set, err := workload.ReadAllTrace(tr)
		f.Close()
		if err != nil {
			t.Fatalf("read back %s: %v", format, err)
		}
		if len(set) != 500 {
			t.Errorf("%s: %d requests, want 500", format, len(set))
		}
	}
}

func TestTraceFlagErrors(t *testing.T) {
	topoP, catP := writeModel(t, t.TempDir())
	base := genOptions{kind: "trace", topoPath: topoP, catPath: catP,
		requests: 10, spanHours: 1, slotMinutes: 5, format: "jsonl", seed: 1}
	cases := []func(*genOptions){
		func(o *genOptions) { o.flashSpecs = "nope" },
		func(o *genOptions) { o.flashSpecs = "1h:x" },
		func(o *genOptions) { o.windowSpecs = "1:2" },
		func(o *genOptions) { o.windowSpecs = "1:2:x" },
		func(o *genOptions) { o.format = "parquet" },
		func(o *genOptions) { o.requests = 0 },
	}
	for i, mutate := range cases {
		o := base
		mutate(&o)
		var sb strings.Builder
		if err := run(&sb, o); err == nil {
			t.Errorf("case %d: invalid trace options accepted: %+v", i, o)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, genOptions{kind: "bogus"}); err == nil {
		t.Error("expected unknown kind error")
	}
}
