// Package occupancy tracks disk usage at every intermediate storage over
// time and detects storage overflows (paper §4.1). The space requirement of
// one residency is the piecewise-linear profile f_c of Eq. 6; the total at
// a storage is the sum over resident copies, also piecewise linear with
// breakpoints at every residency's Load, LastService and LastService+P.
// Overflow detection is therefore exact: the maximum between breakpoints is
// attained at a breakpoint, and capacity crossings are solved linearly.
//
// # Event index
//
// The scheduler's hot path queries the ledger far more often than it
// mutates it: the rejective greedy runs one CanFit per candidate supply
// point per request, and SORP re-detects overflows every iteration. A
// naive evaluation answers each query by re-summing Eq. 6 over every
// entry at every breakpoint — O(E²) per query. The ledger therefore
// maintains, per node, a sweep-line event index: a time-sorted list of
// breakpoint records, up to three per residency,
//
//	{Load,          jump: +γ·size}          copy reserves its peak space
//	{LastService,   dslope: -γ·size/P}      linear decay begins
//	{LastService+P, dslope: +γ·size/P}      decay reaches zero
//
// so the node's total profile is recovered by a single chronological sweep
// accumulating jumps and integrating the running slope. SpaceAt, Peak,
// Overflows and CanFit are all one O(E) sweep. The index is updated
// incrementally by Add/Update/Remove — each mutation inserts or deletes
// that residency's records, recomputed bit-identically from the entry, so
// deletion removes records exactly instead of subtracting floats (no
// cancellation residue accumulates across mutations) — and is preserved
// across the copy-on-write Clone.
//
// All per-node state lives in a dense slice indexed by NodeID (topology
// IDs are dense builder-assigned indices), so the per-query bookkeeping is
// array indexing rather than map hashing. Overflow results are memoized
// per node under a mutation version counter, so AllOverflows between SORP
// iterations re-walks only the nodes whose profile actually changed.
package occupancy

import (
	"fmt"
	"math"
	"sort"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// eps absorbs float jitter when comparing byte quantities: occupancy sums
// are products of ~1e9-byte sizes and unit-free coefficients, so anything
// below a milli-byte is noise.
const eps = 1e-3

// naiveMode disables the event index for ledgers created while it is set:
// every query falls back to the original per-entry re-scan. The slow path
// is kept as the brute-force reference the property and byte-identity
// tests compare the index against.
var naiveMode bool

// SetNaiveForTesting switches subsequently created ledgers to the
// reference (index-free) query path. Testing only; not safe to flip while
// ledgers are in use on other goroutines.
func SetNaiveForTesting(v bool) { naiveMode = v }

// Ref identifies a residency inside a global schedule.
type Ref struct {
	Video media.VideoID
	Index int // index into the FileSchedule's Residencies
}

// Overflow is one storage overflow situation OF_{Δt, ISj}: at storage Node,
// total occupancy exceeds capacity throughout Interval, peaking at Peak
// bytes (Excess bytes above capacity).
type Overflow struct {
	Node     topology.NodeID
	Interval simtime.Interval
	Peak     float64
	Excess   float64
}

func (o Overflow) String() string {
	return fmt.Sprintf("overflow@%d %s peak=%.0fB excess=%.0fB", o.Node, o.Interval, o.Peak, o.Excess)
}

// entry is one registered residency plus its cached profile parameters:
// size and playback from the catalog, and the Eq. 6 peak value v = γ·size
// and decay slope k = v/P, precomputed once at registration so the hot
// paths build the entry's breakpoint records without re-evaluating γ.
type entry struct {
	ref      Ref
	res      schedule.Residency
	size     float64
	playback simtime.Duration
	v        float64 // γ·size; 0 for a copy that occupies nothing
	k        float64 // v / playback, the decay slope (bytes/s)
}

// newEntry builds the registered form of a residency; v and k are
// computed exactly as residencyEvents computes them for candidates, so
// records built from either source are bit-identical.
func newEntry(ref Ref, c schedule.Residency, size float64, playback simtime.Duration) entry {
	e := entry{ref: ref, res: c, size: size, playback: playback}
	if playback > 0 {
		if v := c.Gamma(playback) * size; v != 0 {
			e.v = v
			e.k = v / playback.Seconds()
		}
	}
	return e
}

// event is one sweep-line breakpoint record: at time t the node's total
// profile steps up by jump bytes and its slope changes by dslope bytes/s.
type event struct {
	t      simtime.Time
	jump   float64
	dslope float64
}

// residencyEvents returns a candidate residency's breakpoint records. A
// copy that occupies nothing (zero span, or no playback) contributes none.
func residencyEvents(c schedule.Residency, size float64, playback simtime.Duration) (evs [3]event, n int) {
	if playback <= 0 {
		return
	}
	v := c.Gamma(playback) * size
	if v == 0 {
		return
	}
	k := v / playback.Seconds()
	evs[0] = event{t: c.Load, jump: v}
	evs[1] = event{t: c.LastService, dslope: -k}
	evs[2] = event{t: c.LastService.Add(playback), dslope: k}
	return evs, 3
}

// entryEvents is residencyEvents for a registered entry, reading the
// precomputed v and k instead of re-evaluating γ.
func entryEvents(e *entry) (evs [3]event, n int) {
	if e.v == 0 {
		return
	}
	evs[0] = event{t: e.res.Load, jump: e.v}
	evs[1] = event{t: e.res.LastService, dslope: -e.k}
	evs[2] = event{t: e.res.LastService.Add(e.playback), dslope: e.k}
	return evs, 3
}

// insertEvent places e after every record at the same time. The caller must
// own the slice (see Ledger.own).
func insertEvent(evs []event, e event) []event {
	i := sort.Search(len(evs), func(k int) bool { return evs[k].t > e.t })
	evs = append(evs, event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = e
	return evs
}

// removeEvent deletes the record equal to e. The records were computed by
// entryEvents from the stored entry, so recomputing them yields the exact
// same bits and the match is exact.
func removeEvent(evs []event, e event) []event {
	i := sort.Search(len(evs), func(k int) bool { return evs[k].t >= e.t })
	for ; i < len(evs) && evs[i].t == e.t; i++ {
		if evs[i].jump == e.jump && evs[i].dslope == e.dslope {
			return append(evs[:i], evs[i+1:]...)
		}
	}
	panic(fmt.Sprintf("occupancy: event index out of sync: no record %+v", e))
}

// nodeState is one node's slot in the ledger's dense per-node array.
type nodeState struct {
	// entries holds the residencies registered at the node.
	entries []entry
	// events is the sweep-line index over the entries' profile breakpoints,
	// maintained incrementally and shared with clones under the same
	// copy-on-write protocol as entries.
	events []event
	// ver counts profile mutations. Clones inherit the counter, so along a
	// Clone-and-commit lineage an unchanged counter proves the node's
	// profile is unchanged (counters only ever increase).
	ver uint64
	// shared marks slices whose backing arrays are shared with another
	// ledger (the other side of a Clone). A shared slice is never mutated
	// in place: own() copies it first. This makes Clone O(nodes) instead
	// of O(residencies).
	shared bool
	// ovValid/ovVer/ovs memoize the node's Overflows walk at a version.
	ovValid bool
	ovVer   uint64
	ovs     []Overflow
}

// sweepPt is one stop of a node's prefix sweep: the total profile's
// post-jump value and slope at breakpoint t. Between pts[i].t and
// pts[i+1].t the profile is the line val + slope·(t − pts[i].t).
type sweepPt struct {
	t     simtime.Time
	val   float64
	slope float64
}

// nodeSnap caches the prefix sweep of one node's event index so point
// queries need a binary search plus the breakpoints actually inside their
// window, instead of integrating from the beginning of time. Rebuilt
// lazily (O(E)) on first query after a mutation; the greedy's
// query-heavy/mutation-light access pattern amortizes that to O(1) per
// query. Never shared across clones, so rebuilds may reuse the backing
// array in place.
type nodeSnap struct {
	builtAt uint64 // ver+1 at build time; 0 = never built
	pts     []sweepPt
}

// Ledger is the scheduler's view of disk usage at every storage. It is not
// safe for concurrent mutation.
type Ledger struct {
	topo    *topology.Topology
	catalog *media.Catalog
	// nodes holds the per-node state, indexed densely by NodeID.
	nodes []nodeState
	// snap holds the per-node prefix sweeps, lazily (re)built per version.
	// Unlike the nodes array it is never inherited by Clone, so the slices
	// inside are exclusively owned and rebuilt in place.
	snap []nodeSnap
	// queried, when non-nil, records the nodes whose occupancy state
	// influenced query answers (see TrackQueries).
	queried []bool
	// base, when non-nil, marks this ledger as an overlay view returned by
	// OverlayWithout: the nodes array holds only the view's own delta
	// (masked-out videos' negated records plus local additions) and queries
	// merge that delta with the base's — never copied — state.
	base *Ledger
	// removed lists the videos an overlay view has masked out of its base.
	removed map[media.VideoID]bool
	// caps caches every node's capacity in float bytes and isWh its
	// warehouse-kind flag, so the capacity check — the greedy's hottest
	// query — skips the topology lookups. Shared read-only across clones
	// and views.
	caps []float64
	isWh []bool
	// vidNodes over-approximates, per video, the nodes that may hold one of
	// its copies: Add appends, nothing removes. maskVideo visits only these
	// nodes instead of scanning the whole ledger; a stale node costs one
	// empty scan, never a wrong answer. Clones deep-copy the map (it is
	// tiny: one short node list per video), overlay views never maintain it
	// (they mask through the base's).
	vidNodes map[media.VideoID][]topology.NodeID
	// naive pins the reference query path (see SetNaiveForTesting).
	naive bool
}

// NewLedger returns an empty ledger for the topology.
func NewLedger(topo *topology.Topology, catalog *media.Catalog) *Ledger {
	l := &Ledger{
		topo:    topo,
		catalog: catalog,
		nodes:   make([]nodeState, topo.NumNodes()),
		caps:    make([]float64, topo.NumNodes()),
		isWh:    make([]bool, topo.NumNodes()),
		naive:   naiveMode,
	}
	for n := range l.caps {
		node := topo.Node(topology.NodeID(n))
		l.caps[n] = node.Capacity.Float()
		l.isWh[n] = node.Kind == topology.KindWarehouse
	}
	l.vidNodes = make(map[media.VideoID][]topology.NodeID)
	return l
}

// noteVideoNode records that the video may hold a copy at the node.
func (l *Ledger) noteVideoNode(vid media.VideoID, node topology.NodeID) {
	if l.vidNodes == nil {
		return // overlay view: the base's index covers masking
	}
	ns := l.vidNodes[vid]
	for _, n := range ns {
		if n == node {
			return
		}
	}
	l.vidNodes[vid] = append(ns, node)
}

// FromSchedule builds a ledger holding every residency of the schedule,
// the integration step of paper §3.3.
func FromSchedule(topo *topology.Topology, catalog *media.Catalog, s *schedule.Schedule) *Ledger {
	l := NewLedger(topo, catalog)
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		for i, c := range fs.Residencies {
			l.Add(Ref{Video: vid, Index: i}, c)
		}
	}
	return l
}

// own makes the node's slices safe to mutate: if their backing arrays are
// shared with a clone, they are copied first.
func (l *Ledger) own(node topology.NodeID) {
	st := &l.nodes[node]
	if !st.shared {
		return
	}
	cp := make([]entry, len(st.entries))
	copy(cp, st.entries)
	st.entries = cp
	ep := make([]event, len(st.events))
	copy(ep, st.events)
	st.events = ep
	st.shared = false
}

// dirty records a mutation of the node: the version counter advances and
// the memoized overflow walk is dropped.
func (l *Ledger) dirty(node topology.NodeID) {
	st := &l.nodes[node]
	st.ver++
	st.ovValid = false
	st.ovs = nil
}

// Version returns the node's mutation counter. Along a Clone lineage an
// equal counter proves the node's profile is unchanged; SORP uses this
// to re-evaluate only candidate reschedules whose inputs moved.
func (l *Ledger) Version(node topology.NodeID) uint64 { return l.nodes[node].ver }

// TrackQueries starts recording the nodes whose occupancy state influences
// subsequent query answers (CanFit, SpaceAt, Peak, Overflows, OverflowSet).
// The trace is not inherited by clones.
func (l *Ledger) TrackQueries() { l.queried = make([]bool, l.topo.NumNodes()) }

// QueriedNodes returns the recorded trace in ascending node order.
func (l *Ledger) QueriedNodes() []topology.NodeID {
	var out []topology.NodeID
	for n, q := range l.queried {
		if q {
			out = append(out, topology.NodeID(n))
		}
	}
	return out
}

func (l *Ledger) touch(node topology.NodeID) {
	if l.queried != nil {
		l.queried[node] = true
	}
}

// snapshot returns the node's prefix sweep, rebuilding it if the node has
// mutated since the last build.
func (l *Ledger) snapshot(node topology.NodeID) []sweepPt {
	if l.base != nil {
		panic("occupancy: snapshot of an overlay view")
	}
	if l.snap == nil {
		l.snap = make([]nodeSnap, len(l.nodes))
	}
	sn := &l.snap[node]
	ver := l.nodes[node].ver
	if sn.builtAt == ver+1 {
		return sn.pts
	}
	evs := l.nodes[node].events
	pts := sn.pts[:0]
	val, slope := 0.0, 0.0
	var last simtime.Time
	started := false
	for i := 0; i < len(evs); {
		t := evs[i].t
		if started {
			val += slope * t.Sub(last).Seconds()
		}
		last, started = t, true
		for ; i < len(evs) && evs[i].t == t; i++ {
			val += evs[i].jump
			slope += evs[i].dslope
		}
		pts = append(pts, sweepPt{t: t, val: val, slope: slope})
	}
	sn.pts = pts
	sn.builtAt = ver + 1

	return pts
}

// addEntryEvents inserts the entry's breakpoint records, reporting whether
// the profile changed. A zero-value entry (γ=0 tentative) contributes no
// records and leaves the profile — and hence the node's version — intact;
// the greedy opens such tentatives on every request, so not invalidating
// the node's snapshot and caches for them matters. The caller must already
// own the node's slices.
func (l *Ledger) addEntryEvents(node topology.NodeID, e *entry) bool {
	evs, n := entryEvents(e)
	st := &l.nodes[node]
	for i := 0; i < n; i++ {
		st.events = insertEvent(st.events, evs[i])
	}
	return n > 0
}

// removeEntryEvents deletes the entry's breakpoint records, recomputed
// bit-identically from the stored entry. Reports whether the profile
// changed.
func (l *Ledger) removeEntryEvents(node topology.NodeID, e *entry) bool {
	evs, n := entryEvents(e)
	st := &l.nodes[node]
	for i := 0; i < n; i++ {
		st.events = removeEvent(st.events, evs[i])
	}
	return n > 0
}

// Add registers a residency under the given reference.
func (l *Ledger) Add(ref Ref, c schedule.Residency) {
	v := l.catalog.Video(c.Video)
	l.own(c.Loc)
	e := newEntry(ref, c, v.Size.Float(), v.Playback)
	st := &l.nodes[c.Loc]
	st.entries = append(st.entries, e)
	l.noteVideoNode(c.Video, c.Loc)
	if l.addEntryEvents(c.Loc, &e) {
		l.dirty(c.Loc)
	}
}

// Update replaces the residency registered under ref (e.g. after extending
// its LastService). It reports whether the ref was found. The common case
// — extending a copy in place — is found at the new residency's own node
// without scanning the rest of the ledger.
func (l *Ledger) Update(ref Ref, c schedule.Residency) bool {
	if l.updateAt(c.Loc, ref, c) {
		return true
	}
	for n := range l.nodes {
		node := topology.NodeID(n)
		if node == c.Loc {
			continue
		}
		if l.updateAt(node, ref, c) {
			return true
		}
	}
	return false
}

func (l *Ledger) updateAt(node topology.NodeID, ref Ref, c schedule.Residency) bool {
	es := l.nodes[node].entries
	for i := range es {
		if es[i].ref != ref {
			continue
		}
		l.own(node)
		st := &l.nodes[node]
		es = st.entries
		changed := l.removeEntryEvents(node, &es[i])
		if node == c.Loc {
			v := l.catalog.Video(c.Video)
			es[i] = newEntry(ref, c, v.Size.Float(), v.Playback)
			if l.addEntryEvents(node, &es[i]) || changed {
				l.dirty(node)
			}
			return true
		}
		if changed {
			l.dirty(node)
		}
		// Relocated: drop here and re-add at the new node.
		st.entries = append(es[:i], es[i+1:]...)
		l.Add(ref, c)
		return true
	}
	return false
}

// Remove drops the residency registered under ref, reporting whether it was
// found.
func (l *Ledger) Remove(ref Ref) bool {
	for n := range l.nodes {
		node := topology.NodeID(n)
		es := l.nodes[n].entries
		for i := range es {
			if es[i].ref == ref {
				l.own(node)
				st := &l.nodes[n]
				es = st.entries
				if l.removeEntryEvents(node, &es[i]) {
					l.dirty(node)
				}
				st.entries = append(es[:i], es[i+1:]...)
				return true
			}
		}
	}
	return false
}

// Clone returns an independent copy of the ledger. The rejective greedy
// evaluates candidate reschedules against clones (or the cheaper overlay
// views, see OverlayWithout) so rejected candidates leave the real ledger
// untouched.
//
// The copy is lazy: the clone shares the per-node entry and event slices
// with the source and both sides copy a slice only before first mutating
// it, so Clone itself is O(nodes). Because Clone marks the source's slices
// shared too, it counts as a mutation of the source: concurrent Clone
// calls on the same ledger must be serialized by the caller.
//
// Version counters and memoized overflow walks carry over; a query trace
// does not.
func (l *Ledger) Clone() *Ledger {
	if l.base != nil {
		panic("occupancy: Clone of an overlay view; Flatten it first")
	}
	out := &Ledger{
		topo:     l.topo,
		catalog:  l.catalog,
		nodes:    make([]nodeState, len(l.nodes)),
		caps:     l.caps,
		isWh:     l.isWh,
		vidNodes: make(map[media.VideoID][]topology.NodeID, len(l.vidNodes)),
		naive:    l.naive,
	}
	for vid, ns := range l.vidNodes {
		out.vidNodes[vid] = append([]topology.NodeID(nil), ns...)
	}
	copy(out.nodes, l.nodes)
	for n := range l.nodes {
		l.nodes[n].shared = true
		out.nodes[n].shared = true
	}
	return out
}

// OverlayWithout returns a lightweight view of the ledger for evaluating a
// candidate reschedule of one video. The view behaves like
// Clone-then-RemoveVideo(vid), but the base's entry and event slices are
// neither copied nor modified: the view keeps only its own delta — the
// masked video's negated breakpoint records plus whatever the greedy adds
// — and CanFit merges the base's prefix snapshot with that delta. A
// candidate evaluation therefore costs the size of the candidate's own
// footprint, not the size of the ledger: nothing is copied up front, the
// base's snapshots stay valid and are shared by every live view, and only
// the winning view is materialized back into a real ledger (Flatten).
//
// The view supports the rejective greedy's working set — Add, Update,
// RemoveVideo, CanFit/CanFitExcluding, SpaceAt, TrackQueries/QueriedNodes
// — and panics on whole-profile walks (Peak, Overflows, OverflowSet) and
// on Clone. Mutations must be limited to residencies of videos the view
// has removed, which is exactly the greedy's contract: it only places
// copies of the file being rescheduled.
//
// OverlayWithout itself must be called sequentially (it builds the base's
// snapshots in place), but the returned views may then be used
// concurrently with each other and with base reads, provided the base is
// not mutated while views are live.
//
// In naive (reference) mode the view is a plain Clone with the video
// removed, so both query paths keep identical semantics.
func (l *Ledger) OverlayWithout(vid media.VideoID) *Ledger {
	if l.base != nil {
		panic("occupancy: OverlayWithout of an overlay view")
	}
	if l.naive {
		c := l.Clone()
		c.RemoveVideo(vid)
		return c
	}
	for n := range l.nodes {
		l.snapshot(topology.NodeID(n))
	}
	o := &Ledger{
		topo:    l.topo,
		catalog: l.catalog,
		nodes:   make([]nodeState, len(l.nodes)),
		base:    l,
		removed: map[media.VideoID]bool{vid: true},
		caps:    l.caps,
		isWh:    l.isWh,
	}
	o.maskVideo(vid)
	return o
}

// maskVideo inserts the negated breakpoint records of every base copy of
// the video into the overlay's delta, cancelling the copies out of the
// merged profile exactly (the records are recomputed bit-identically from
// the stored entries, and each negated Load jump coincides with the
// base's positive one, so the merged profile has no downward jumps).
func (l *Ledger) maskVideo(vid media.VideoID) {
	for _, node := range l.base.vidNodes[vid] {
		n := int(node)
		es := l.base.nodes[n].entries
		st := &l.nodes[n]
		for i := range es {
			if es[i].ref.Video != vid {
				continue
			}
			evs, ne := entryEvents(&es[i])
			if len(st.events) == 0 && cap(st.events) == 0 {
				// Fresh delta (the OverlayWithout path): batch the negated
				// records and sort once, instead of a sorted insert per
				// record. The insertion sort is stable, so records at equal
				// times keep insertion order exactly as insertEvent places
				// them.
				neg := make([]event, 0, 3*len(es))
				for j := i; j < len(es); j++ {
					if es[j].ref.Video != vid {
						continue
					}
					ev, m := entryEvents(&es[j])
					for k := 0; k < m; k++ {
						neg = append(neg, event{t: ev[k].t, jump: -ev[k].jump, dslope: -ev[k].dslope})
					}
				}
				for a := 1; a < len(neg); a++ {
					for b := a; b > 0 && neg[b].t < neg[b-1].t; b-- {
						neg[b], neg[b-1] = neg[b-1], neg[b]
					}
				}
				st.events = neg
				break
			}
			for k := 0; k < ne; k++ {
				st.events = insertEvent(st.events,
					event{t: evs[k].t, jump: -evs[k].jump, dslope: -evs[k].dslope})
			}
		}
	}
}

// Flatten materializes an overlay view into a standalone ledger: a clone
// of the base with the masked videos removed and the view's own
// residencies replayed on top — the committed result of a winning
// candidate. On a non-overlay ledger it returns the receiver unchanged,
// so callers treat the clone-based (naive) and overlay paths uniformly.
// The replay performs the same per-node mutations the clone-based path
// would have, so entry order, event arrays and Version counters come out
// bit-identical to Clone-then-RemoveVideo-then-reschedule.
func (l *Ledger) Flatten() *Ledger {
	if l.base == nil {
		return l
	}
	out := l.base.Clone()
	for vid := range l.removed {
		out.RemoveVideo(vid)
	}
	for n := range l.nodes {
		es := l.nodes[n].entries
		for i := range es {
			out.Add(es[i].ref, es[i].res)
		}
	}
	return out
}

// RemoveVideo drops every residency of the given video from the ledger,
// the first step of rescheduling a victim file. Nodes holding no copy of
// the video are left untouched (and, on a clone, un-copied).
func (l *Ledger) RemoveVideo(vid media.VideoID) {
	if l.base != nil && !l.removed[vid] {
		// Overlay view: mask the base's copies out of the delta once; the
		// loop below then drops any copies the view itself has added.
		if l.removed == nil {
			l.removed = make(map[media.VideoID]bool)
		}
		l.removed[vid] = true
		l.maskVideo(vid)
	}
	for n := range l.nodes {
		node := topology.NodeID(n)
		es := l.nodes[n].entries
		holds := false
		for i := range es {
			if es[i].ref.Video == vid {
				holds = true
				break
			}
		}
		if !holds {
			continue
		}
		l.own(node)
		st := &l.nodes[n]
		es = st.entries
		kept := es[:0]
		changed := false
		for i := range es {
			if es[i].ref.Video != vid {
				kept = append(kept, es[i])
			} else if l.removeEntryEvents(node, &es[i]) {
				changed = true
			}
		}
		st.entries = kept
		if changed {
			l.dirty(node)
		}
	}
}

// NumEntries returns the number of residencies registered at the node.
func (l *Ledger) NumEntries(node topology.NodeID) int { return len(l.nodes[node].entries) }

// SpaceAt returns the total occupancy at the node at time t, in bytes.
func (l *Ledger) SpaceAt(node topology.NodeID, t simtime.Time) float64 {
	l.touch(node)
	if l.base != nil {
		// Overlay view: the base's value plus the delta integrated up to t.
		total := l.base.SpaceAt(node, t)
		evs := l.nodes[node].events
		val, slope := 0.0, 0.0
		var last simtime.Time
		started := false
		for i := 0; i < len(evs) && evs[i].t <= t; i++ {
			if started {
				val += slope * evs[i].t.Sub(last).Seconds()
			}
			last, started = evs[i].t, true
			val += evs[i].jump
			slope += evs[i].dslope
		}
		if started {
			val += slope * t.Sub(last).Seconds()
		}
		return total + val
	}
	if l.naive {
		total := 0.0
		es := l.nodes[node].entries
		for i := range es {
			total += es[i].res.SpaceAt(t, es[i].size, es[i].playback)
		}
		return total
	}
	pts := l.snapshot(node)
	i := sort.Search(len(pts), func(k int) bool { return pts[k].t > t }) - 1
	if i < 0 {
		return 0
	}
	return pts[i].val + pts[i].slope*t.Sub(pts[i].t).Seconds()
}

// breakpoints returns the sorted distinct profile breakpoints of the node's
// entries, optionally restricted to [window.Start, window.End] (endpoints
// included so linear pieces at the window edges are evaluated).
func (l *Ledger) breakpoints(node topology.NodeID, window *simtime.Interval) []simtime.Time {
	var pts []simtime.Time
	add := func(t simtime.Time) {
		if window != nil && (t < window.Start || t > window.End) {
			return
		}
		pts = append(pts, t)
	}
	es := l.nodes[node].entries
	for i := range es {
		add(es[i].res.Load)
		add(es[i].res.LastService)
		add(es[i].res.LastService.Add(es[i].playback))
	}
	if window != nil {
		pts = append(pts, window.Start, window.End)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := pts[:0]
	var last simtime.Time
	for i, t := range pts {
		if i == 0 || t != last {
			out = append(out, t)
			last = t
		}
	}
	return out
}

// Peak returns the maximum total occupancy ever reached at the node and a
// time at which it is attained.
func (l *Ledger) Peak(node topology.NodeID) (float64, simtime.Time) {
	if l.base != nil {
		panic("occupancy: Peak on an overlay view; Flatten it first")
	}
	l.touch(node)
	best, when := 0.0, simtime.Time(0)
	if l.naive {
		for _, t := range l.breakpoints(node, nil) {
			if s := l.SpaceAt(node, t); s > best {
				best, when = s, t
			}
		}
		return best, when
	}
	// The total profile only jumps upward and decays between jumps (the
	// running slope is never positive), so the maximum is attained at a
	// post-jump breakpoint value; the earliest attaining time wins, as in
	// the reference walk.
	pts := l.snapshot(node)
	for i := range pts {
		if pts[i].val > best {
			best, when = pts[i].val, pts[i].t
		}
	}
	return best, when
}

// jumpAt returns the instantaneous upward jump of the node's occupancy at
// time t: copies reserve their peak space the moment loading starts, so the
// profile jumps by the copy's value exactly at its Load breakpoint. Used by
// the reference overflow walk.
func (l *Ledger) jumpAt(node topology.NodeID, t simtime.Time) float64 {
	total := 0.0
	es := l.nodes[node].entries
	for i := range es {
		if es[i].res.Load == t {
			total += es[i].res.SpaceAt(t, es[i].size, es[i].playback)
		}
	}
	return total
}

// Overflows returns the maximal intervals during which the node's occupancy
// strictly exceeds its capacity, in chronological order. The warehouse
// never overflows (its capacity is unbounded by definition).
//
// Between breakpoints the total profile is linear; at a breakpoint it may
// jump upward (a copy's space is reserved instantaneously at Load). The
// walk therefore treats each piece [a, b) as the segment from the post-jump
// value at a to the left limit at b, which is exact.
//
// The walk is memoized per node: a repeat call at an unchanged mutation
// version returns the previous result, so SORP's per-iteration AllOverflows
// only re-walks the nodes the last committed reschedule touched. Callers
// must treat the returned slice as read-only.
func (l *Ledger) Overflows(node topology.NodeID) []Overflow {
	if l.base != nil {
		panic("occupancy: Overflows on an overlay view; Flatten it first")
	}
	if l.topo.Node(node).Kind == topology.KindWarehouse {
		return nil
	}
	l.touch(node)
	st := &l.nodes[node]
	if st.ovValid && st.ovVer == st.ver {
		return st.ovs
	}
	var ovs []Overflow
	if l.naive {
		ovs = l.overflowsNaive(node)
	} else {
		ovs = l.overflowsIndexed(node)
	}
	st.ovValid, st.ovVer, st.ovs = true, st.ver, ovs
	return ovs
}

func (l *Ledger) overflowsIndexed(node topology.NodeID) []Overflow {
	pts := l.snapshot(node)
	if len(pts) == 0 {
		return nil
	}
	capacity := l.topo.Node(node).Capacity.Float()
	over := func(s float64) bool { return s > capacity+eps }

	var out []Overflow
	open := false
	var start simtime.Time
	peak := 0.0
	closeAt := func(end simtime.Time) {
		out = append(out, Overflow{
			Node:     node,
			Interval: simtime.Interval{Start: start, End: end},
			Peak:     peak,
			Excess:   peak - capacity,
		})
		open = false
		peak = 0
	}

	for i := range pts {
		a, sa := pts[i].t, pts[i].val
		var b simtime.Time
		var sb float64 // left limit approaching b
		last := i+1 == len(pts)
		if last {
			// After the final breakpoint every profile is zero.
			b, sb = a, sa
		} else {
			b = pts[i+1].t
			sb = pts[i].val + pts[i].slope*b.Sub(a).Seconds()
		}
		if !open {
			switch {
			case over(sa):
				open, start, peak = true, a, sa
			case !last && over(sb):
				// Segment ramps above capacity strictly inside (a, b).
				open, start, peak = true, crossing(a, sa, b, sb, capacity), sb
			}
		}
		if open {
			if sa > peak {
				peak = sa
			}
			if sb > peak {
				peak = sb
			}
			switch {
			case last:
				closeAt(a)
			case !over(sb):
				closeAt(crossing(a, sa, b, sb, capacity))
			}
		}
	}
	if open {
		closeAt(pts[len(pts)-1].t)
	}
	return mergeOverflows(out)
}

// overflowsNaive is the reference walk: per-breakpoint re-summation of
// Eq. 6 over every entry.
func (l *Ledger) overflowsNaive(node topology.NodeID) []Overflow {
	capacity := l.topo.Node(node).Capacity.Float()
	pts := l.breakpoints(node, nil)
	if len(pts) == 0 {
		return nil
	}
	over := func(s float64) bool { return s > capacity+eps }

	var out []Overflow
	open := false
	var start simtime.Time
	peak := 0.0
	closeAt := func(end simtime.Time) {
		out = append(out, Overflow{
			Node:     node,
			Interval: simtime.Interval{Start: start, End: end},
			Peak:     peak,
			Excess:   peak - capacity,
		})
		open = false
		peak = 0
	}

	for i := 0; i+1 <= len(pts); i++ {
		a := pts[i]
		sa := l.SpaceAt(node, a) // post-jump value at a
		var b simtime.Time
		var sb float64 // left limit approaching b
		last := i+1 == len(pts)
		if last {
			b, sb = a, sa
		} else {
			b = pts[i+1]
			sb = l.SpaceAt(node, b) - l.jumpAt(node, b)
		}
		if !open {
			switch {
			case over(sa):
				open, start, peak = true, a, sa
			case !last && over(sb):
				open, start, peak = true, crossing(a, sa, b, sb, capacity), sb
			}
		}
		if open {
			if sa > peak {
				peak = sa
			}
			if sb > peak {
				peak = sb
			}
			switch {
			case last:
				closeAt(a)
			case !over(sb):
				closeAt(crossing(a, sa, b, sb, capacity))
			}
		}
	}
	if open {
		closeAt(pts[len(pts)-1])
	}
	return mergeOverflows(out)
}

// crossing solves for the time where the line through (t0,s0)-(t1,s1)
// crosses the capacity level, rounded to the enclosing integer second so
// overflow intervals are conservative (never narrower than reality).
func crossing(t0 simtime.Time, s0 float64, t1 simtime.Time, s1 float64, capacity float64) simtime.Time {
	if s1 == s0 {
		return t0
	}
	frac := (capacity - s0) / (s1 - s0)
	x := float64(t0) + frac*float64(t1-t0)
	if s1 > s0 {
		return simtime.Time(math.Floor(x)) // ascending: start earlier
	}
	return simtime.Time(math.Ceil(x)) // descending: end later
}

func mergeOverflows(ovs []Overflow) []Overflow {
	if len(ovs) <= 1 {
		return ovs
	}
	out := ovs[:1]
	for _, o := range ovs[1:] {
		last := &out[len(out)-1]
		if o.Interval.Start <= last.Interval.End {
			if o.Interval.End > last.Interval.End {
				last.Interval.End = o.Interval.End
			}
			if o.Peak > last.Peak {
				last.Peak = o.Peak
				last.Excess = o.Excess
			}
		} else {
			out = append(out, o)
		}
	}
	return out
}

// AllOverflows returns every overflow at every storage, ordered by node ID
// then time.
func (l *Ledger) AllOverflows() []Overflow {
	var out []Overflow
	for _, node := range l.topo.Storages() {
		out = append(out, l.Overflows(node)...)
	}
	return out
}

// OverflowSet returns the references of the residencies at the node whose
// space profile overlaps the interval — the candidate victims for the
// overflow OF_{Δt, node} (paper §4.1).
//
// The overlap test is exact: the overflow interval is closed (it may be a
// single instant) and a residency's support is half-open, so a copy whose
// support merely abuts the interval — loading exactly at its end, or
// fully decayed exactly at its start — holds no space inside the overflow
// and is not a candidate victim.
func (l *Ledger) OverflowSet(node topology.NodeID, iv simtime.Interval) []Ref {
	if l.base != nil {
		panic("occupancy: OverflowSet on an overlay view; Flatten it first")
	}
	l.touch(node)
	var out []Ref
	es := l.nodes[node].entries
	for i := range es {
		sup := es[i].res.Support(es[i].playback)
		if overlapsOverflow(sup, iv) {
			out = append(out, es[i].ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Video != out[j].Video {
			return out[i].Video < out[j].Video
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// overlapsOverflow reports whether the half-open support [sup.Start,
// sup.End) shares time of positive measure with the closed overflow
// interval [iv.Start, iv.End] — or, for a degenerate (instant) overflow,
// whether the support covers the instant itself.
func overlapsOverflow(sup, iv simtime.Interval) bool {
	if iv.Start == iv.End {
		return sup.Start <= iv.Start && iv.Start < sup.End
	}
	return sup.Start < iv.End && iv.Start < sup.End
}

// CanFit reports whether adding the candidate residency to the node would
// keep total occupancy within capacity at all times. The check is exact:
// the combined profile is piecewise linear, so it suffices to test every
// breakpoint inside the candidate's support.
func (l *Ledger) CanFit(c schedule.Residency) bool {
	return l.CanFitExcluding(c, nil)
}

// CanFitExcluding is CanFit with one registered residency disregarded: the
// check for extending an existing copy passes the copy's own ref so its
// pre-extension profile is not double counted.
//
// This sits on the greedy's innermost path: a single chronological sweep
// merges the node's event index with the candidate's (and the negated
// excluded entry's) breakpoint records and tests the running total at
// every breakpoint inside the candidate's support — O(E) per call instead
// of the reference path's O(E²) per-breakpoint re-summation.
func (l *Ledger) CanFitExcluding(c schedule.Residency, exclude *Ref) bool {
	node := c.Loc
	if l.isWh[node] {
		return true
	}
	l.touch(node)
	if l.naive {
		return l.canFitNaive(c, exclude)
	}
	v := l.catalog.Video(c.Video)
	capacity := l.caps[node]
	size, playback := v.Size.Float(), v.Playback
	sup := c.Support(playback)
	if sup.Empty() {
		// Zero-span tentative cache: peaks at γ=0, occupies nothing.
		return true
	}
	basel := l
	var ovs []event
	if l.base != nil {
		basel = l.base
		ovs = l.nodes[node].events
	}
	pts := basel.snapshot(node)

	// Manual binary search for the last breakpoint at or before sup.Start
	// (sort.Search's indirect predicate call is measurable at this call
	// rate).
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].t > sup.Start {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bk := lo - 1

	// Up to six extra sweep records: the candidate's own breakpoints plus
	// the excluded entry's, negated. Fixed array + insertion sort keeps
	// this allocation-free (the call sits on the greedy's innermost loop);
	// the candidate's records are built in place (residencyEvents unrolled,
	// same arithmetic) to skip the call and array copy.
	var extra [6]event
	ne := 0
	if playback > 0 {
		if cv := c.Gamma(playback) * size; cv != 0 {
			ck := cv / playback.Seconds()
			extra[0] = event{t: c.Load, jump: cv}
			extra[1] = event{t: c.LastService, dslope: -ck}
			extra[2] = event{t: c.LastService.Add(playback), dslope: ck}
			ne = 3
		}
	}
	if exclude != nil {
		es := l.nodes[node].entries
		for i := range es {
			if es[i].ref == *exclude {
				eev, m := entryEvents(&es[i])
				for k := 0; k < m; k++ {
					extra[ne] = event{t: eev[k].t, jump: -eev[k].jump, dslope: -eev[k].dslope}
					ne++
				}
				break
			}
		}
	}
	for i := 1; i < ne; i++ {
		for j := i; j > 0 && extra[j].t < extra[j-1].t; j-- {
			extra[j], extra[j-1] = extra[j-1], extra[j]
		}
	}

	// Walk the check times — sup.Start, every breakpoint (node, overlay or
	// extra) inside the support, then sup.End — evaluating the combined
	// profile as base (from the prefix snapshot, entered by binary search)
	// plus deltas: the ≤6 extra records and, on an overlay view, the
	// view's own per-node delta records. The combined profile is piecewise
	// linear, and every local maximum inside the support sits at a
	// post-jump breakpoint value or at the support's endpoints: ascending
	// segments exist only inside a negated copy's decay window and always
	// end at an evaluated breakpoint, and every negated Load jump
	// coincides with the base's positive one, so the merged profile never
	// jumps downward (left limits equal evaluated post-jump values).
	bval, bslope := 0.0, 0.0
	var bt simtime.Time
	bactive := bk >= 0
	if bactive {
		bval, bslope, bt = pts[bk].val, pts[bk].slope, pts[bk].t
	}
	bi := bk + 1
	dj := 0
	dval, dslope := 0.0, 0.0
	var dlast simtime.Time
	dstarted := false
	oj := 0
	oval, oslope := 0.0, 0.0
	var olast simtime.Time
	ostarted := false
	for T := sup.Start; ; {
		for bi < len(pts) && pts[bi].t <= T {
			bval, bslope, bt = pts[bi].val, pts[bi].slope, pts[bi].t
			bactive = true
			bi++
		}
		for dj < ne && extra[dj].t <= T {
			if dstarted {
				dval += dslope * extra[dj].t.Sub(dlast).Seconds()
			}
			dlast, dstarted = extra[dj].t, true
			dval += extra[dj].jump
			dslope += extra[dj].dslope
			dj++
		}
		for oj < len(ovs) && ovs[oj].t <= T {
			if ostarted {
				oval += oslope * ovs[oj].t.Sub(olast).Seconds()
			}
			olast, ostarted = ovs[oj].t, true
			oval += ovs[oj].jump
			oslope += ovs[oj].dslope
			oj++
		}
		total := dval
		if dstarted && T > dlast {
			total += dslope * T.Sub(dlast).Seconds()
		}
		if ostarted {
			total += oval
			if T > olast {
				total += oslope * T.Sub(olast).Seconds()
			}
		}
		if bactive {
			total += bval + bslope*T.Sub(bt).Seconds()
		}
		if total > capacity+eps {
			return false
		}
		if T == sup.End {
			return true
		}
		next := sup.End
		if bi < len(pts) && pts[bi].t < next {
			next = pts[bi].t
		}
		if dj < ne && extra[dj].t < next {
			next = extra[dj].t
		}
		if oj < len(ovs) && ovs[oj].t < next {
			next = ovs[oj].t
		}
		T = next
	}
}

// canFitNaive is the reference fit check: per-breakpoint re-summation of
// every entry's profile.
func (l *Ledger) canFitNaive(c schedule.Residency, exclude *Ref) bool {
	node := c.Loc
	v := l.catalog.Video(c.Video)
	capacity := l.topo.Node(node).Capacity.Float()
	size, playback := v.Size.Float(), v.Playback
	sup := c.Support(playback)
	if sup.Empty() {
		return true
	}
	fitsAt := func(t simtime.Time) bool {
		if t < sup.Start || t > sup.End {
			return true
		}
		have := l.SpaceAt(node, t)
		if exclude != nil {
			es := l.nodes[node].entries
			for i := range es {
				if es[i].ref == *exclude {
					have -= es[i].res.SpaceAt(t, es[i].size, es[i].playback)
					break
				}
			}
		}
		return have+c.SpaceAt(t, size, playback) <= capacity+eps
	}
	if !fitsAt(c.Load) || !fitsAt(c.LastService) || !fitsAt(c.LastService.Add(playback)) {
		return false
	}
	es := l.nodes[node].entries
	for i := range es {
		if !fitsAt(es[i].res.Load) || !fitsAt(es[i].res.LastService) || !fitsAt(es[i].res.LastService.Add(es[i].playback)) {
			return false
		}
	}
	return true
}

// Banned describes a forbidden (interval, storage) pair the rejective
// greedy must respect when rescheduling a victim: the victim may not hold a
// copy at Node whose profile overlaps Interval (paper §4.2).
type Banned struct {
	Node     topology.NodeID
	Interval simtime.Interval
}

// Violates reports whether a candidate residency's space profile overlaps
// the banned window at the banned node.
func (bn Banned) Violates(c schedule.Residency, playback simtime.Duration) bool {
	if c.Loc != bn.Node {
		return false
	}
	sup := c.Support(playback)
	// Endpoint-inclusive: an overflow interval may be a single instant.
	return sup.Start <= bn.Interval.End && bn.Interval.Start < sup.End
}
