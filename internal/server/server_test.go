package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *testutil.Fig2) {
	t.Helper()
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(f.Model))
	t.Cleanup(ts.Close)
	return ts, f
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestTopologyAndCatalogEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spec struct {
		Warehouse string `json:"warehouse"`
		Storages  []any  `json:"storages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Warehouse != "VW" || len(spec.Storages) != 2 {
		t.Errorf("topology = %+v", spec)
	}

	resp2, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var videos []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&videos); err != nil {
		t.Fatal(err)
	}
	if len(videos) != 1 {
		t.Errorf("catalog = %d titles", len(videos))
	}
}

func TestScheduleEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Requests: f.Requests})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ScheduleResponse](t, resp)
	if !out.FinalCost.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("final cost = %v, want $108.45", out.FinalCost)
	}
	if !out.DirectCost.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("direct cost = %v", out.DirectCost)
	}
	if out.Copies != 2 || out.HitRatePct < 66 || out.HitRatePct > 67 {
		t.Errorf("stats: copies=%d hit=%g", out.Copies, out.HitRatePct)
	}
	// The returned schedule validates.
	if err := out.Schedule.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("returned schedule invalid: %v", err)
	}
}

func TestScheduleEndpointWithOptions(t *testing.T) {
	ts, f := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{
		Requests: f.Requests, Metric: "period", Policy: "no-caching",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ScheduleResponse](t, resp)
	if out.Copies != 0 {
		t.Error("no-caching policy must not cache")
	}
	if !out.FinalCost.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("no-caching cost = %v", out.FinalCost)
	}
}

func TestScheduleEndpointRejections(t *testing.T) {
	ts, f := newTestServer(t)
	cases := []struct {
		name string
		body any
	}{
		{"empty batch", ScheduleRequest{}},
		{"bad metric", ScheduleRequest{Requests: f.Requests, Metric: "bogus"}},
		{"bad policy", ScheduleRequest{Requests: f.Requests, Policy: "bogus"}},
		{"unknown user", ScheduleRequest{Requests: workload.Set{{User: 99, Video: 0, Start: 0}}}},
		{"unknown video", ScheduleRequest{Requests: workload.Set{{User: 0, Video: 42, Start: 0}}}},
		{"negative start", ScheduleRequest{Requests: workload.Set{{User: 0, Video: 0, Start: -5}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/schedule", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d", resp.StatusCode)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	// Round trip: schedule, then simulate the returned schedule.
	resp := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Requests: f.Requests})
	sched := decode[ScheduleResponse](t, resp)
	resp2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: sched.Schedule})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	sim := decode[SimulateResponse](t, resp2)
	if !sim.OK || len(sim.Violations) != 0 {
		t.Fatalf("simulate: %+v", sim)
	}
	if !sim.TotalCost.ApproxEqual(sched.FinalCost, 1e-3) {
		t.Errorf("simulated %v != scheduled %v", sim.TotalCost, sched.FinalCost)
	}
	if sim.Streams != 3 || sim.CacheLoads != 2 {
		t.Errorf("sim counts: %+v", sim)
	}
}

func TestSimulateEndpointRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing schedule: status = %d", resp.StatusCode)
	}
	bad := schedule.New()
	bad.Put(&schedule.FileSchedule{Video: 99})
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown video: status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /v1/schedule must not succeed")
	}
}

func TestBillEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Requests: f.Requests})
	sched := decode[ScheduleResponse](t, resp)
	resp2 := postJSON(t, ts.URL+"/v1/bill", BillRequest{Schedule: sched.Schedule})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	bill := decode[BillResponse](t, resp2)
	if len(bill.Lines) != 3 {
		t.Fatalf("lines = %d", len(bill.Lines))
	}
	if !bill.Total.ApproxEqual(sched.FinalCost, 1e-6) {
		t.Errorf("bill total %v != schedule cost %v", bill.Total, sched.FinalCost)
	}
	// Missing schedule rejected.
	resp3 := postJSON(t, ts.URL+"/v1/bill", BillRequest{})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("missing schedule: status = %d", resp3.StatusCode)
	}
	// Unknown video rejected.
	bad := schedule.New()
	bad.Put(&schedule.FileSchedule{Video: 42})
	resp4 := postJSON(t, ts.URL+"/v1/bill", BillRequest{Schedule: bad})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown video: status = %d", resp4.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Topology.Nodes != 3 || st.Topology.Links != 2 || st.Titles != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Topology.Diameter != 2 {
		t.Errorf("diameter = %d", st.Topology.Diameter)
	}
}

// TestConcurrentScheduleRequests exercises the server's concurrency claim:
// the model is read-only after construction, so parallel schedule calls
// must race-cleanly produce identical results.
func TestConcurrentScheduleRequests(t *testing.T) {
	ts, f := newTestServer(t)
	const workers = 8
	results := make([]vspMoney, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(ScheduleRequest{Requests: f.Requests})
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out ScheduleResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			results[i] = out.FinalCost
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("nondeterministic concurrent results: %v vs %v", results[i], results[0])
		}
	}
}

type vspMoney = units.Money
