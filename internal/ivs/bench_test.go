package ivs

import (
	"fmt"
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// chainRig builds the worst case for tentative-cache bookkeeping: a long
// chain VW - IS1 - ... - ISn with users at the far end, so every direct
// stream traverses every storage and opens a tentative copy at each. The
// residency list then grows by O(chain) per request, and a per-candidate
// linear duplicate scan makes ScheduleFile quadratic in the request count.
func chainRig(b *testing.B, storages int) (*cost.Model, workload.Set) {
	b.Helper()
	topo := topology.Chain(topology.GenConfig{
		Storages:        storages,
		UsersPerStorage: 1,
		Capacity:        1000 * units.GB,
	})
	cat, err := media.Uniform(1, 2.5e9, 2*simtime.Hour+15*simtime.Minute, units.Mbps(2.5))
	if err != nil {
		b.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(1), testutil.CentsPerMbit(0.1))
	model := cost.NewModel(book, routing.NewTable(book), cat)
	return model, nil
}

// BenchmarkScheduleFileChain is the asymptotic guard for the incremental
// duplicate-suppression index: doubling the request count should roughly
// double ns/op (linear greedy bookkeeping), not quadruple it (the old
// quadratic duplicate scan). Compare the per-request cost across sizes.
func BenchmarkScheduleFileChain(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		b.Run(fmt.Sprintf("requests=%d", n), func(b *testing.B) {
			model, _ := chainRig(b, 12)
			topo := model.Book().Topology()
			last := topo.NumUsers() - 1 // farthest user: longest route
			reqs := make([]workload.Request, n)
			for i := range reqs {
				reqs[i] = workload.Request{
					User:  topology.UserID(last),
					Video: 0,
					Start: simtime.Time(i) * simtime.Time(simtime.Minute),
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ScheduleFile(model, 0, reqs, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
