package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/chaos"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// trySubmit posts one reservation without failing the test, returning
// the serving shard (on 202) or the error.
func trySubmit(t *testing.T, opts retryhttp.Options, base string, req workload.Request) (string, error) {
	t.Helper()
	at := req.Start
	var ack gateway.ReservationResponse
	err := retryhttp.PostJSON(context.Background(), opts, base+"/v1/reservations",
		server.ReservationRequest{User: req.User, Video: req.Video, Start: req.Start, At: &at}, &ack)
	return ack.Shard, err
}

// One partitioned shard must not veto the broadcast: the other shards'
// epoch results come back 200 with the dead shard named in failed.
func TestAdvancePartialFailure(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	var victims []*httptest.Server
	for i := 0; i < 3; i++ {
		url, _, ts := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
		victims = append(victims, ts)
	}
	_, base := startGateway(t, gateway.Config{Shards: shards, Retry: fastRetry})

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	var end simtime.Time
	for _, req := range reqs[:6] {
		submit(t, base, req)
		if req.Start > end {
			end = req.Start
		}
	}
	victims[1].Close() // partition s1 (no standby: failover has nowhere to go)

	var adv gateway.AdvanceResponse
	if err := retryhttp.PostJSON(context.Background(), fastRetry, base+"/v1/advance",
		server.AdvanceRequest{To: end.Add(simtime.Hour)}, &adv); err != nil {
		t.Fatalf("partial broadcast should answer 200, got %v", err)
	}
	if len(adv.Shards) != 2 {
		t.Fatalf("advance reported %d successful shards, want 2", len(adv.Shards))
	}
	for _, se := range adv.Shards {
		if se.Shard == "s1" {
			t.Fatal("dead shard listed among successes")
		}
	}
	if len(adv.Failed) != 1 || adv.Failed[0].Shard != "s1" || adv.Failed[0].Error == "" {
		t.Fatalf("failed list = %+v, want exactly s1 with an error", adv.Failed)
	}

	// With every shard gone the broadcast is a real error again.
	victims[0].Close()
	victims[2].Close()
	err := retryhttp.PostJSON(context.Background(), retryhttp.Options{MaxAttempts: 1},
		base+"/v1/advance", server.AdvanceRequest{To: end.Add(2 * simtime.Hour)}, nil)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("all-shards-dead broadcast answered %v, want 502", err)
	}
}

// A shard answering every intake call with 5xx must be ejected from
// placement while the others keep serving, and must be let back in by a
// half-open probe once it recovers.
func TestBreakerEjectsFailingShardAndRecovers(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	var hosts []string
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
		hosts = append(hosts, strings.TrimPrefix(url, "http://"))
	}
	// s1 answers 500 (non-retryable, counted as a hard failure) for the
	// first 400ms of the test, then heals.
	faultFor := 400 * time.Millisecond
	inj := chaos.New(21, chaos.Rule{
		Host:  hosts[1],
		Until: faultFor,
		Fault: chaos.Fault{ErrProb: 1, Code: http.StatusInternalServerError},
	})
	upstream := retryhttp.Options{
		Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
		MaxAttempts: 1,
	}
	_, base := startGateway(t, gateway.Config{
		Shards: shards,
		Retry:  upstream,
		Breaker: gateway.BreakerConfig{
			Window:      2 * time.Second,
			Buckets:     10,
			MinSamples:  3,
			FailureRate: 0.5,
			OpenFor:     150 * time.Millisecond,
		},
	})

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	next := 0
	sub := func() (string, error) {
		req := reqs[next%len(reqs)]
		req.Start = req.Start.Add(simtime.Duration(next) * simtime.Minute)
		next++
		return trySubmit(t, retryhttp.Options{MaxAttempts: 1}, base, req)
	}

	// Phase 1: drive traffic until s1 has eaten enough 500s to trip.
	var s1Failures int
	for i := 0; i < 30 && s1Failures < 3; i++ {
		if _, err := sub(); err != nil {
			s1Failures++
		}
	}
	if s1Failures < 3 {
		t.Fatalf("failing shard absorbed only %d failures in 30 submits", s1Failures)
	}

	// Phase 2: with s1 ejected, everything lands on s0/s2 and succeeds.
	for i := 0; i < 12; i++ {
		shard, err := sub()
		if err != nil {
			t.Fatalf("submit with ejected shard failed: %v", err)
		}
		if shard == "s1" {
			t.Fatal("placement still routed to the ejected shard")
		}
	}
	st := gatewayStats(t, base)
	if st.HealthyShards != 2 {
		t.Fatalf("healthy_shards = %d with one ejection, want 2", st.HealthyShards)
	}
	if brk := st.Shards[1].Breaker; brk == nil || brk.State != "open" || brk.Ejections == 0 {
		t.Fatalf("s1 breaker block = %+v, want open with ejections", brk)
	}

	// Phase 3: after the fault window and the cool-off, traffic probes
	// s1 back to closed.
	time.Sleep(faultFor + 200*time.Millisecond)
	recovered := false
	for i := 0; i < 40 && !recovered; i++ {
		if shard, err := sub(); err == nil && shard == "s1" {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("healed shard never served again: breaker wedged open")
	}
	st = gatewayStats(t, base)
	if brk := st.Shards[1].Breaker; brk == nil || brk.State != "closed" {
		t.Fatalf("s1 breaker after recovery = %+v, want closed", brk)
	}
	if st.HealthyShards != 3 {
		t.Fatalf("healthy_shards = %d after recovery, want 3", st.HealthyShards)
	}
}

// When every shard is ejected the gateway itself sheds with 503 +
// Retry-After, counts it, and /readyz goes not-ready — then recovers.
func TestGatewayShedsWhenAllShardsEjected(t *testing.T) {
	r := testRig(t)
	url, _, _ := startShard(t, r, server.Options{})
	host := strings.TrimPrefix(url, "http://")
	faultFor := 400 * time.Millisecond
	inj := chaos.New(22, chaos.Rule{
		Host:  host,
		Until: faultFor,
		Fault: chaos.Fault{ErrProb: 1, Code: http.StatusInternalServerError},
	})
	_, base := startGateway(t, gateway.Config{
		Shards: []gateway.ShardConfig{{ID: "s0", Primary: url}},
		Retry: retryhttp.Options{
			Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
			MaxAttempts: 1,
		},
		Breaker: gateway.BreakerConfig{
			Window:      2 * time.Second,
			MinSamples:  2,
			FailureRate: 0.5,
			OpenFor:     200 * time.Millisecond,
		},
	})

	var ready gateway.ReadyResponse
	if err := retryhttp.GetJSON(context.Background(), retryhttp.Options{MaxAttempts: 1}, base+"/readyz", &ready); err != nil || !ready.Ready {
		t.Fatalf("fresh gateway not ready: %+v, %v", ready, err)
	}

	body := func() *bytes.Reader {
		b, _ := json.Marshal(server.ReservationRequest{User: 0, Video: 0, Start: simtime.Time(simtime.Hour)})
		return bytes.NewReader(b)
	}
	// Two failures trip the only shard's breaker.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/reservations", "application/json", body())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("priming submit %d: status %d, want relayed 500", i, resp.StatusCode)
		}
	}
	// Now the gateway must shed without touching the shard.
	before := inj.Stats().Calls
	resp, err := http.Post(base+"/v1/reservations", "application/json", body())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-ejected submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed reply has no Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) != nil || !strings.Contains(e.Error, "ejected") {
		t.Fatalf("shed body %+v does not name the ejection", e)
	}
	if inj.Stats().Calls != before {
		t.Fatal("shed request still reached the shard")
	}

	err = retryhttp.GetJSON(context.Background(), retryhttp.Options{MaxAttempts: 1}, base+"/readyz", &ready)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all shards ejected answered %v, want 503", err)
	}
	st := gatewayStats(t, base)
	if st.GatewayShed == 0 {
		t.Fatalf("gateway_shed_total = %d, want > 0", st.GatewayShed)
	}

	// After the fault clears and the cool-off passes, a probe recovers
	// the tier: no wedged-open breaker.
	time.Sleep(faultFor + 300*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := trySubmit(t, retryhttp.Options{MaxAttempts: 1}, base,
			workload.Request{User: 0, Video: 0, Start: simtime.Time(2 * simtime.Hour)}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tier never recovered after faults cleared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := retryhttp.GetJSON(context.Background(), retryhttp.Options{MaxAttempts: 1}, base+"/readyz", &ready); err != nil || !ready.Ready {
		t.Fatalf("readyz after recovery: %+v, %v", ready, err)
	}
}

// ShardTimeout is the deadline the gateway propagates to the shard
// call: a shard sitting on a request cannot pin the intake worker (and
// the client) past the budget.
func TestShardTimeoutBoundsSlowShard(t *testing.T) {
	// A shard that never answers intake calls within the test's patience.
	// (It drains the body like a real server, so the net/http close
	// watcher can cancel its context when the gateway gives up.)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	}))
	defer slow.Close()

	_, base := startGateway(t, gateway.Config{
		Shards:       []gateway.ShardConfig{{ID: "s0", Primary: slow.URL}},
		Retry:        retryhttp.Options{MaxAttempts: 1},
		ShardTimeout: 150 * time.Millisecond,
	})

	start := time.Now()
	_, err := trySubmit(t, retryhttp.Options{MaxAttempts: 1}, base,
		workload.Request{User: 0, Video: 0, Start: simtime.Time(simtime.Hour)})
	elapsed := time.Since(start)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("slow shard answered %v, want 502 after the budget", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not propagate: submit pinned for %v", elapsed)
	}

	// The client can tighten the budget below ShardTimeout per request.
	reqBody, _ := json.Marshal(server.ReservationRequest{User: 0, Video: 0, Start: simtime.Time(simtime.Hour)})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/reservations", bytes.NewReader(reqBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Budget-Ms", "50")
	start = time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("budget-header submit: status %d, want 502", resp.StatusCode)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("50ms client budget took %v", el)
	}
}
