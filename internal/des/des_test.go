package des

import (
	"testing"

	"github.com/vodsim/vsp/internal/simtime"
)

func TestEventOrdering(t *testing.T) {
	e := New(0)
	var order []int
	add := func(at simtime.Time, id int) {
		if err := e.At(at, func(simtime.Time) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(30, 3)
	add(10, 1)
	add(20, 2)
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("clock = %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(0)
	var order []int
	for i := 0; i < 5; i++ {
		id := i
		if err := e.At(42, func(simtime.Time) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, id := range order {
		if id != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New(0)
	var got []simtime.Time
	if err := e.At(10, func(now simtime.Time) {
		got = append(got, now)
		if err := e.After(5, func(now simtime.Time) { got = append(got, now) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Errorf("got = %v", got)
	}
}

func TestPastScheduleRejected(t *testing.T) {
	e := New(100)
	if err := e.At(50, func(simtime.Time) {}); err == nil {
		t.Error("expected error scheduling in the past")
	}
	if err := e.At(100, func(simtime.Time) {}); err != nil {
		t.Errorf("scheduling at now must work: %v", err)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(0)
	fired := 0
	for _, at := range []simtime.Time{10, 20, 30} {
		if err := e.At(at, func(simtime.Time) { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Errorf("fired = %d after Run, want 3", fired)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New(0)
	_ = e.At(1, func(simtime.Time) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on re-entrant Run")
			}
		}()
		e.Run()
	})
	e.Run()
}
