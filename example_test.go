package vsp_test

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

// Example reproduces the paper's Fig. 2 worked example: three users, two
// intermediate storages, one movie — and shows the scheduler beating both
// enumerated schedules of the paper.
func Example() {
	b := vsp.NewTopology()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", vsp.GB(10))
	is2 := b.Storage("IS2", vsp.GB(10))
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	catalog, err := vsp.UniformCatalog(1, vsp.GB(2.5), 90*vsp.Minute, vsp.Mbps(6))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's rates: 0.2 and 0.1 cents per megabit on the two links,
	// $1/GB·hour at both storages.
	centsPerMbit := func(c float64) vsp.NRate { return vsp.NRate(c / 100 * 8 / 1e6) }
	e01, _ := topo.EdgeBetween(vw, is1)
	e12, _ := topo.EdgeBetween(is1, is2)
	sys.SetLinkRate(e01, centsPerMbit(0.2))
	sys.SetLinkRate(e12, centsPerMbit(0.1))
	if err := sys.SetStorageRate(is1, vsp.PerGBHour(1)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SetStorageRate(is2, vsp.PerGBHour(1)); err != nil {
		log.Fatal(err)
	}

	reqs := vsp.RequestSet{
		{User: 0, Video: 0, Start: 0},                          // 1:00 pm
		{User: 1, Video: 0, Start: vsp.Time(90 * vsp.Minute)},  // 2:30 pm
		{User: 2, Video: 0, Start: vsp.Time(180 * vsp.Minute)}, // 4:00 pm
	}
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	direct, err := sys.ScheduleDirect(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler: %v\n", out.FinalCost)
	fmt.Printf("direct:    %v\n", direct.FinalCost)
	// Output:
	// scheduler: $108.4500
	// direct:    $259.2000
}

// ExampleSystem_Simulate executes a schedule on the event simulator and
// confirms the independently derived cost.
func ExampleSystem_Simulate() {
	topo := vsp.StarTopology(vsp.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: vsp.GB(10)})
	catalog, err := vsp.UniformCatalog(2, vsp.GB(2.5), 90*vsp.Minute, vsp.Mbps(6))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(1), vsp.PerGB(200))
	if err != nil {
		log.Fatal(err)
	}
	reqs := vsp.RequestSet{
		{User: 0, Video: 0, Start: 0},
		{User: 1, Video: 0, Start: vsp.Time(3 * vsp.Hour)},
	}
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.Simulate(out.Schedule)
	fmt.Printf("ok=%v streams=%d match=%v\n",
		rep.OK(), rep.Streams, rep.TotalCost().ApproxEqual(out.FinalCost, 1e-6))
	// Output:
	// ok=true streams=2 match=true
}
