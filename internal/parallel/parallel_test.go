package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		seen := make([]int32, n)
		if err := Do(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A 0-iteration loop performs no cancellation check.
	if err := Do(ctx, 4, 0, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatalf("expected nil for zero jobs, got %v", err)
	}
}

func TestDoCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := Do(ctx, 1, 1000, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d jobs ran", n)
	}
}

func TestWorkersNormalization(t *testing.T) {
	cases := []struct{ workers, n, min, max int }{
		{0, 100, 1, 1 << 20}, // GOMAXPROCS, whatever it is
		{-3, 5, 1, 5},
		{8, 3, 3, 3},
		{2, 100, 2, 2},
		{4, 0, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.workers, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]", c.workers, c.n, got, c.min, c.max)
		}
	}
}
