package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func fixtures(t *testing.T) (topoP, catP, reqP string) {
	t.Helper()
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(topo, cat, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	topoP = filepath.Join(dir, "topo.json")
	f, err := os.Create(topoP)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, err = os.Create(catP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqP = filepath.Join(dir, "requests.json")
	if err := cli.SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	return topoP, catP, reqP
}

// Replay the generated trace through the rolling horizon with a small
// epoch trigger and verify the committed schedule lands on disk serving
// every reservation.
func TestRunReplaysTrace(t *testing.T) {
	topoP, catP, reqP := fixtures(t)
	outP := filepath.Join(t.TempDir(), "plan.json")
	o := options{
		topoPath: topoP, catPath: catP, reqPath: reqP,
		srate: 2, nrate: 400,
		metricName: "space-per-cost", policyName: "cache-on-route",
		leadHours:     2,
		epochRequests: 2,
		compare:       true,
		outPath:       outP,
		quiet:         true,
	}
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}

	var got schedule.Schedule
	f, err := os.Open(outP)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&got); err != nil {
		t.Fatal(err)
	}
	topo, err := cli.LoadTopology(topoP)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := cli.LoadRequests(reqP)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDeliveries() != len(reqs) {
		t.Fatalf("committed plan has %d deliveries for %d reservations", got.NumDeliveries(), len(reqs))
	}
	cat, err := cli.LoadCatalog(catP)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(topo, cat, reqs); err != nil {
		t.Fatalf("committed plan invalid: %v", err)
	}
}

func TestRunRequiresFlags(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Fatal("missing-flag run must fail")
	}
}
