// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, so benchmark history can be committed and
// diffed (see the bench-json Makefile target, which writes
// BENCH_scheduler.json).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -out BENCH.json
//
// When both BenchmarkHorizonAdvance and BenchmarkFullResolve appear in the
// input, the record also carries their ns/op ratio — the incremental
// scheduler's speedup over re-solving the whole batch at every epoch.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// CPU is the GOMAXPROCS the benchmark ran with (the -N name suffix),
	// so `-cpu 1,4` runs of the same benchmark stay distinguishable.
	CPU int `json:"cpu,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// HorizonSpeedup is BenchmarkFullResolve's ns/op over
	// BenchmarkHorizonAdvance's: how much work the rolling-horizon
	// incremental extension saves vs. a full re-solve per epoch.
	HorizonSpeedup float64 `json:"horizon_speedup_vs_full_resolve,omitempty"`
	// Phase1ParallelSpeedup is BenchmarkSchedulePhase1's ns/op at -cpu 1
	// over its ns/op at the highest -cpu in the input: the wall-clock win
	// of the parallel phase-1 fan-out. Meaningful only on multi-core
	// machines — on a single hardware thread it hovers near 1.
	Phase1ParallelSpeedup float64 `json:"phase1_parallel_speedup,omitempty"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	var horizon, full float64
	var p1seq, p1par float64
	maxCPU := 0
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "BenchmarkHorizonAdvance":
			horizon = b.NsPerOp
		case "BenchmarkFullResolve":
			full = b.NsPerOp
		case "BenchmarkSchedulePhase1":
			if b.CPU <= 1 {
				p1seq = b.NsPerOp
			} else if b.CPU > maxCPU {
				maxCPU = b.CPU
				p1par = b.NsPerOp
			}
		}
	}
	if horizon > 0 && full > 0 {
		rep.HorizonSpeedup = full / horizon
	}
	if p1seq > 0 && p1par > 0 {
		rep.Phase1ParallelSpeedup = p1seq / p1par
	}
	return rep, nil
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   34   34567890 ns/op   123456 B/op   789 allocs/op
//
// Non-benchmark lines (package headers, PASS, ok ...) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	cpu := 0
	// The GOMAXPROCS suffix (BenchmarkX-8) moves to the CPU field so that
	// `-cpu 1,4` runs of one benchmark keep distinct records under a
	// stable name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, cpu = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, CPU: cpu}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if b.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
		}
	}
	return b, true, nil
}
