package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/wal"
)

func replCfg() horizon.Config {
	return horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
}

func getAs[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp.StatusCode, decode[T](t, resp)
}

// Two servers over the HTTP surface: a durable primary and a warm
// standby shipping its WAL. The standby reports unready until caught up,
// rejects intake while following, promotes over HTTP with the source
// fenced, and the deposed primary then refuses intake with the
// stale-leadership error.
func TestServerFailoverEndToEnd(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	primary := mustNew(t, f, Options{DataDir: t.TempDir(), Horizon: replCfg()})
	pts := httptest.NewServer(primary)
	t.Cleanup(pts.Close)
	standby := mustNew(t, f, Options{
		DataDir:        t.TempDir(),
		Horizon:        replCfg(),
		ReplicateFrom:  pts.URL,
		ReplicateEvery: 2 * time.Millisecond,
	})
	sts := httptest.NewServer(standby)
	t.Cleanup(sts.Close)

	// A follower refuses stateful intake outright.
	resp := postJSON(t, sts.URL+"/v1/reservations", ReservationRequest{
		User: f.Requests[0].User, Video: f.Requests[0].Video, Start: f.Requests[0].Start,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("follower accepted a reservation: status %d", resp.StatusCode)
	}
	if e := decode[map[string]string](t, resp); !strings.Contains(e["error"], "stale leadership") {
		t.Fatalf("follower rejection %q does not name stale leadership", e["error"])
	}

	// Alive but not serviceable: /healthz 200, /readyz 503 with a reason.
	if code, _ := getAs[map[string]any](t, sts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("follower healthz = %d, want 200", code)
	}
	code, ready := getAs[ReadyResponse](t, sts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("unsynced follower readyz = %d ready=%v, want 503", code, ready.Ready)
	}
	if !strings.Contains(ready.Reason, "not yet synced") {
		t.Fatalf("readyz reason %q does not explain the missing sync", ready.Reason)
	}

	// Load the primary, then start shipping.
	for _, q := range f.Requests {
		if resp := postJSON(t, pts.URL+"/v1/reservations", ReservationRequest{
			User: q.User, Video: q.Video, Start: q.Start,
		}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("primary reservation: status %d", resp.StatusCode)
		}
	}
	if resp := postJSON(t, pts.URL+"/v1/advance", AdvanceRequest{
		To: simtime.Time(120 * int64(simtime.Minute)),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("primary advance: status %d", resp.StatusCode)
	}
	standby.StartReplication(context.Background())

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, ready = getAs[ReadyResponse](t, sts.URL+"/readyz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never became ready: %d %+v", code, ready)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ready.Ready || ready.Status.Lag != 0 || ready.Status.Role != "follower" {
		t.Fatalf("ready follower status: %+v", ready)
	}
	if ready.Status.AppliedSeq != uint64(len(f.Requests))+1 {
		t.Fatalf("follower applied seq %d, want %d", ready.Status.AppliedSeq, len(f.Requests)+1)
	}

	// /v1/stats carries the same replication status and readiness.
	if _, stats := getAs[StatsResponse](t, sts.URL+"/v1/stats"); !stats.Ready ||
		stats.Replication.Role != "follower" || stats.Replication.AppliedSeq != ready.Status.AppliedSeq {
		t.Fatalf("stats replication block: ready=%v %+v", stats.Ready, stats.Replication)
	}

	// Promote the standby, fencing the old primary under the new epoch.
	resp = postJSON(t, sts.URL+"/v1/replication/promote", PromoteRequest{FenceSource: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	prom := decode[PromoteResponse](t, resp)
	if !prom.Promoted || !prom.SourceFenced || prom.Epoch != 2 {
		t.Fatalf("promotion reply: %+v", prom)
	}
	if prom.AppliedSeq != ready.Status.AppliedSeq {
		t.Fatalf("promotion at seq %d, follower had %d", prom.AppliedSeq, ready.Status.AppliedSeq)
	}

	// The deposed primary is fenced: intake answers the stale-leadership
	// conflict and readiness drops, so a balancer drains it.
	resp = postJSON(t, pts.URL+"/v1/advance", AdvanceRequest{
		To: simtime.Time(240 * int64(simtime.Minute)),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fenced primary accepted an advance: status %d", resp.StatusCode)
	}
	if e := decode[map[string]string](t, resp); !strings.Contains(e["error"], "stale leadership") {
		t.Fatalf("fenced rejection %q does not name stale leadership", e["error"])
	}
	if code, _ := getAs[ReadyResponse](t, pts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("fenced primary readyz = %d, want 503", code)
	}

	// The new primary serves: ready, and accepting the advance the old
	// one just refused.
	if code, _ := getAs[ReadyResponse](t, sts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("promoted node readyz = %d, want 200", code)
	}
	if resp := postJSON(t, sts.URL+"/v1/advance", AdvanceRequest{
		To: simtime.Time(240 * int64(simtime.Minute)),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted node advance: status %d", resp.StatusCode)
	}
}

// Promotion of a follower that has never synced is refused with 409 and
// leaves the node a functioning follower; force overrides.
func TestPromoteRefusedUntilSynced(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// The replication source does not resolve: the follower can never sync.
	standby := mustNew(t, f, Options{
		DataDir:       t.TempDir(),
		Horizon:       replCfg(),
		ReplicateFrom: "http://127.0.0.1:1", // nothing listens there
	})
	sts := httptest.NewServer(standby)
	t.Cleanup(sts.Close)

	resp := postJSON(t, sts.URL+"/v1/replication/promote", PromoteRequest{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unsynced promotion: status %d, want 409", resp.StatusCode)
	}
	if e := decode[map[string]string](t, resp); !strings.Contains(e["error"], "catch-up") {
		t.Fatalf("refusal %q does not explain the catch-up failure", e["error"])
	}

	resp = postJSON(t, sts.URL+"/v1/replication/promote", PromoteRequest{Force: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced promotion: status %d", resp.StatusCode)
	}
	if prom := decode[PromoteResponse](t, resp); !prom.Promoted {
		t.Fatalf("forced promotion reply: %+v", prom)
	}
}

// The WAL endpoint fences by epoch: a request carrying a higher epoch
// demotes the serving primary before the response is assembled.
func TestReplicationWALObservesEpoch(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	primary := mustNew(t, f, Options{DataDir: t.TempDir(), Horizon: replCfg()})
	pts := httptest.NewServer(primary)
	t.Cleanup(pts.Close)

	// A poll at the primary's own epoch leaves it serving.
	if code, _ := getAs[map[string]any](t, pts.URL+"/v1/replication/wal?after=0&epoch=1"); code != http.StatusOK {
		t.Fatalf("poll at current epoch: status %d", code)
	}
	// A poll announcing epoch 5 supersedes it.
	code, e := getAs[map[string]string](t, pts.URL+"/v1/replication/wal?after=0&epoch=5")
	if code != http.StatusConflict || !strings.Contains(e["error"], "stale leadership") {
		t.Fatalf("superseded poll: status %d body %v", code, e)
	}
	if resp := postJSON(t, pts.URL+"/v1/reservations", ReservationRequest{
		User: f.Requests[0].User, Video: f.Requests[0].Video, Start: f.Requests[0].Start,
	}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("demoted primary accepted intake: status %d", resp.StatusCode)
	}
}

// Replication endpoints on an in-memory node answer 501: there is no
// journal to ship.
func TestReplicationWALRequiresDurability(t *testing.T) {
	ts, _ := newTestServer(t)
	code, e := getAs[map[string]string](t, ts.URL+"/v1/replication/wal?after=0&epoch=1")
	if code != http.StatusNotImplemented || !strings.Contains(e["error"], "durable") {
		t.Fatalf("in-memory WAL endpoint: status %d body %v", code, e)
	}
}
