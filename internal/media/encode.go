package media

import (
	"encoding/json"
	"fmt"
	"io"
)

// Encode writes the catalog as indented JSON (an array of videos).
func (c *Catalog) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.videos)
}

// MarshalJSON encodes the catalog as its video array.
func (c *Catalog) MarshalJSON() ([]byte, error) { return json.Marshal(c.videos) }

// Decode reads a JSON video array and validates it into a catalog.
func Decode(r io.Reader) (*Catalog, error) {
	var videos []Video
	if err := json.NewDecoder(r).Decode(&videos); err != nil {
		return nil, fmt.Errorf("media: decode: %w", err)
	}
	return NewCatalog(videos)
}
