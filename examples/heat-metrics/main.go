// Heat-metrics: reproduce the heart of the paper's Experiment 4 on one
// deliberately over-committed system. Small neighborhood disks force the
// integrated phase-1 schedule to over-commit storage; the four victim-
// selection heat metrics (Eqs. 8–11) then resolve the same overflows with
// different victims — and different final costs. Method 4 (time–space
// improvement per overhead dollar) is the paper's recommendation.
package main

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages:        9,
		UsersPerStorage: 8,
		Capacity:        vsp.GB(4), // barely one movie per storage
	}, 7)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(5), vsp.PerGB(500))
	if err != nil {
		log.Fatal(err)
	}
	// A highly skewed evening: nearly everyone wants the same few titles,
	// so every neighborhood wants to cache them — more demand for disk
	// than exists.
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{
		Alpha:  0.1,
		Window: 6 * vsp.Hour,
		Seed:   8,
	})
	if err != nil {
		log.Fatal(err)
	}

	metrics := []struct {
		m    vsp.HeatMetric
		desc string
	}{
		{vsp.Period, "Eq. 8:  improved period length"},
		{vsp.PeriodPerCost, "Eq. 9:  improved period per overhead $"},
		{vsp.Space, "Eq. 10: freed time-space product"},
		{vsp.SpacePerCost, "Eq. 11: freed time-space per overhead $"},
	}

	var phase1 vsp.Money
	fmt.Println("metric                        final cost    Δ vs phase-1   victims")
	for _, mc := range metrics {
		out, err := sys.Schedule(reqs, vsp.SchedulerConfig{Metric: mc.m})
		if err != nil {
			log.Fatal(err)
		}
		phase1 = out.Phase1Cost
		if len(sys.Overflows(out.Schedule)) != 0 {
			log.Fatalf("%v left overflows behind", mc.m)
		}
		fmt.Printf("%-28s  %-12v  +%.2f%%        %d\n",
			mc.m, out.FinalCost,
			100*float64(out.FinalCost-out.Phase1Cost)/float64(out.Phase1Cost),
			len(out.Victims))
	}
	fmt.Printf("\nphase-1 (capacity-blind) cost: %v with %d storage overflows\n",
		phase1, func() int {
			raw, err := sys.Schedule(reqs, vsp.SchedulerConfig{SkipResolution: true})
			if err != nil {
				log.Fatal(err)
			}
			return raw.Overflows
		}())
	fmt.Println("\nEach metric resolves every overflow; they differ in how much")
	fmt.Println("schedule cost the resolution sacrifices. The per-cost metrics")
	fmt.Println("(Eqs. 9 and 11) are the paper's winners across its 785-case study.")
}
