package repair

import (
	"reflect"
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/workload"
)

func minutes(x int) simtime.Time { return simtime.Time(simtime.Duration(x) * simtime.Minute) }

func checkBookkeeping(t *testing.T, res *Result) {
	t.Helper()
	if res.Repaired+len(res.Missed) != res.Impacted {
		t.Errorf("bookkeeping: repaired %d + missed %d != impacted %d",
			res.Repaired, len(res.Missed), res.Impacted)
	}
	if res.FromCache+res.FromVW != res.Repaired {
		t.Errorf("bookkeeping: cache %d + vw %d != repaired %d",
			res.FromCache, res.FromVW, res.Repaired)
	}
}

// TestEmptyScenarioIdentity: repairing under no faults must return a
// schedule identical to the input with a zero cost delta.
func TestEmptyScenarioIdentity(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []*faults.Scenario{nil, {}, {Faults: []faults.Fault{{Kind: faults.LinkDown, From: 5, Until: 5}}}} {
		res, err := Repair(f.Model, out.Schedule, sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Schedule, out.Schedule) {
			t.Errorf("empty scenario changed the schedule")
		}
		if res.Delta() != 0 || res.Impacted != 0 || res.Repaired != 0 || len(res.Missed) != 0 {
			t.Errorf("empty scenario not a no-op: %+v", res)
		}
		checkBookkeeping(t, res)
	}
}

// TestSingleOutageLiveVWZeroMissed is the acceptance scenario: one
// intermediate storage fails while the warehouse stays up, and repair
// re-sources every knocked-out future service with zero misses and a
// quantified cost delta.
func TestSingleOutageLiveVWZeroMissed(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.NodeOutage, Node: f.IS1, From: minutes(30), Until: minutes(60),
	}}}
	for _, pol := range []Policy{Reroute, VWDirect} {
		res, err := Repair(f.Model, out.Schedule, sc, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		checkBookkeeping(t, res)
		// The outage severs the in-flight t=0 stream (unrecoverable) and
		// knocks out the 90m and 180m services; both must be repaired.
		if len(res.Missed) != 0 {
			t.Fatalf("%v: missed services after repair: %+v", pol, res.Missed)
		}
		if res.Impacted != 2 || res.Repaired != 2 || res.Severed != 1 {
			t.Errorf("%v: impacted=%d repaired=%d severed=%d, want 2/2/1", pol, res.Impacted, res.Repaired, res.Severed)
		}
		if res.Delta() == 0 {
			t.Errorf("%v: repair reported a zero cost delta for a lossy scenario", pol)
		}
		t.Logf("%v: cost %.4f -> %.4f (delta %+.4f), copies=%d hit=%.0f%%",
			pol, float64(res.CostBefore), float64(res.CostAfter), float64(res.Delta()), res.Copies, res.HitRatePct)
		// The repaired schedule must actually survive the same scenario.
		rep := vodsim.ExecuteScenario(f.Model.Book(), f.Model.Catalog(), res.Schedule, sc)
		if !rep.OK() {
			t.Fatalf("%v: repaired schedule has violations: %v", pol, rep.Violations)
		}
		if rep.Missed != 0 {
			t.Errorf("%v: re-simulating repaired schedule still misses %d services\nnotes: %v", pol, rep.Missed, rep.FaultNotes)
		}
	}
}

// triangle builds VW—IS1—IS2 plus a direct VW—IS2 edge, so the warehouse
// keeps an access route to IS2 users whatever happens to IS1.
type triangle struct {
	topo          *topology.Topology
	model         *cost.Model
	vw, is1, is2  topology.NodeID
	e01, e12, e02 int
	reqs          workload.Set
}

// newTriangle builds the rig; directRate prices the VW—IS2 shortcut (the
// other edges cost 0.1 ¢/Mbit).
func newTriangle(t *testing.T, directRate pricing.NRate) *triangle {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.Connect(vw, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(1, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(0.05), testutil.CentsPerMbit(0.1))
	e01, _ := topo.EdgeBetween(vw, is1)
	e12, _ := topo.EdgeBetween(is1, is2)
	e02, _ := topo.EdgeBetween(vw, is2)
	book.SetNRate(e02, directRate)
	model := cost.NewModel(book, routing.NewTable(book), cat)
	u1 := topo.UsersAt(is1)[0]
	u2 := topo.UsersAt(is2)[0]
	return &triangle{
		topo: topo, model: model, vw: vw, is1: is1, is2: is2,
		e01: e01, e12: e12, e02: e02,
		reqs: workload.Set{
			{User: u1, Video: 0, Start: 0},
			{User: u1, Video: 0, Start: minutes(90)},
			{User: u2, Video: 0, Start: minutes(180)},
		},
	}
}

// TestVWDirectFallbackNeverMisses: as long as the warehouse is admitting
// and the victim's access route survives its playback window, the
// vw-direct policy repairs every impacted service — across outage shapes.
func TestVWDirectFallbackNeverMisses(t *testing.T) {
	cases := []struct {
		name string
		mk   func(tr *triangle) []faults.Fault
	}{
		{"IS1 outage before repairs", func(tr *triangle) []faults.Fault {
			return []faults.Fault{{Kind: faults.NodeOutage, Node: tr.is1, From: minutes(30), Until: minutes(60)}}
		}},
		{"feed link cut mid-stream", func(tr *triangle) []faults.Fault {
			return []faults.Fault{{Kind: faults.LinkDown, Edge: tr.e01, From: minutes(10), Until: minutes(50)}}
		}},
		{"outage plus lasting link failure", func(tr *triangle) []faults.Fault {
			return []faults.Fault{
				{Kind: faults.NodeOutage, Node: tr.is1, From: minutes(30), Until: minutes(60)},
				{Kind: faults.LinkDown, Edge: tr.e12, From: minutes(80), Until: minutes(300)},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTriangle(t, testutil.CentsPerMbit(0.1))
			out, err := scheduler.Run(tr.model, tr.reqs, scheduler.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sc := &faults.Scenario{Faults: tc.mk(tr)}
			res, err := Repair(tr.model, out.Schedule, sc, Options{Policy: VWDirect})
			if err != nil {
				t.Fatal(err)
			}
			checkBookkeeping(t, res)
			if res.Impacted == 0 {
				t.Fatal("scenario did not impact the schedule; test proves nothing")
			}
			if len(res.Missed) != 0 {
				t.Fatalf("vw-direct fallback missed services: %+v", res.Missed)
			}
			rep := vodsim.ExecuteScenario(tr.model.Book(), tr.model.Catalog(), res.Schedule, sc)
			if !rep.OK() {
				t.Fatalf("repaired schedule has violations: %v", rep.Violations)
			}
			if rep.Missed != 0 {
				t.Errorf("re-simulation misses %d services\nnotes: %v", rep.Missed, rep.FaultNotes)
			}
		})
	}
}

// TestRerouteUsesSurvivingCopy: when the warehouse is browned out at
// service time but a surviving cached copy can reach the user around the
// dead link, the reroute policy saves the service and vw-direct cannot.
func TestRerouteUsesSurvivingCopy(t *testing.T) {
	tr := newTriangle(t, testutil.CentsPerMbit(1.0)) // pricey shortcut: greedy serves IS2 via IS1
	out, err := scheduler.Run(tr.model, tr.reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Precondition: the 180m service is cache-sourced over IS1—IS2.
	fs := out.Schedule.File(0)
	if fs == nil {
		t.Fatal("no schedule for video 0")
	}
	var found bool
	for _, d := range fs.Deliveries {
		if d.Start == minutes(180) && d.SourceResidency != schedule.NoResidency {
			found = true
		}
	}
	if !found {
		t.Fatalf("precondition: 180m service not cache-sourced; schedule %+v", fs)
	}
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.LinkDown, Edge: tr.e12, From: minutes(175), Until: minutes(185)},
		{Kind: faults.VWBrownout, From: minutes(175), Until: minutes(185)},
	}}
	res, err := Repair(tr.model, out.Schedule, sc, Options{Policy: Reroute})
	if err != nil {
		t.Fatal(err)
	}
	checkBookkeeping(t, res)
	if len(res.Missed) != 0 {
		t.Fatalf("reroute missed services: %+v", res.Missed)
	}
	if res.FromCache != 1 {
		t.Errorf("reroute served %d from cache, want 1 (IS1 copy around the dead link)", res.FromCache)
	}
	rep := vodsim.ExecuteScenario(tr.model.Book(), tr.model.Catalog(), res.Schedule, sc)
	if !rep.OK() || rep.Missed != 0 {
		t.Fatalf("re-simulation: ok=%v missed=%d violations=%v notes=%v", rep.OK(), rep.Missed, rep.Violations, rep.FaultNotes)
	}

	vres, err := Repair(tr.model, out.Schedule, sc, Options{Policy: VWDirect})
	if err != nil {
		t.Fatal(err)
	}
	checkBookkeeping(t, vres)
	if len(vres.Missed) != 1 {
		t.Errorf("vw-direct under brown-out: missed %+v, want exactly the 180m service", vres.Missed)
	}
}
