// Package loadgen is the closed-loop load harness for the reservation
// intake tier. It replays a workload trace against the HTTP surface of a
// single vspserve node or a vspgateway shard tier: a fixed pool of
// workers submits reservations back-to-back (each worker issues its next
// request as soon as the previous ack returns — closed-loop, so offered
// concurrency is the knob, not an open arrival rate), while a dedicated
// advancer closes epochs whenever the service reports one due.
//
// The harness deliberately does NOT retry shed requests: a 429 is a
// measurement (the admission controller working), not a transient to
// paper over, so submits go through a plain http.Client rather than
// retryhttp. The result quantifies the run — submit latency percentiles,
// shed and late-arrival rates, epoch advance lag — and marshals to JSON
// for the benchmark trajectory.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/stats"
	"github.com/vodsim/vsp/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// Target is the base URL of the intake surface (vspserve or
	// vspgateway), e.g. "http://127.0.0.1:8080".
	Target string
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int
	// Timeout bounds each HTTP call (default 30s).
	Timeout time.Duration
	// Advance drives POST /v1/advance whenever a submit ack reports an
	// epoch due (default true — set DisableAdvance to turn it off when
	// the target advances itself, e.g. a gateway with -advance-lag).
	DisableAdvance bool
	// AdvanceLag holds each advance target this far behind the highest
	// arrival instant submitted so far, absorbing cross-worker skew the
	// same way the gateway's auto-advance does. 0 advances to the
	// highest arrival seen.
	AdvanceLag simtime.Duration
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Result is a load run's measurement, JSON-ready for the BENCH
// trajectory.
type Result struct {
	// Name labels the run when several measurements share one BENCH file
	// (e.g. "gray-failure, breakers off"). Set by the caller, not by Run.
	Name        string `json:"name,omitempty"`
	Target      string `json:"target"`
	Concurrency int    `json:"concurrency"`

	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	// Shed counts 429 replies — the admission controller rejecting load.
	Shed int `json:"shed"`
	// Late counts 409 replies — arrivals behind the commit horizon.
	Late int `json:"late"`
	// Errors counts transport failures and unexpected statuses.
	// ErrorsByCause partitions them: "timeout" (deadline blown),
	// "connection" (transport death), "5xx" (server/gateway failure
	// replies), "status_NNN" (other unexpected statuses). Sheds and lates
	// are protocol answers, counted in their own fields, not here.
	Errors        int            `json:"errors"`
	ErrorsByCause map[string]int `json:"errors_by_cause,omitempty"`
	ErrorSamples  []string       `json:"error_samples,omitempty"`
	ShedRate      float64        `json:"shed_rate"`
	// Availability is accepted/submitted — the fraction of offered load
	// that came back with a 202.
	Availability float64 `json:"availability"`

	ElapsedMS      int64   `json:"elapsed_ms"`
	AcceptedPerSec float64 `json:"accepted_per_sec"`

	// Submit summarizes per-request submit latency (p50/p95/p99/max).
	Submit stats.LatencySummary `json:"submit_latency"`

	// Advances counts epoch closes the harness drove; Advance summarizes
	// their round-trips, and MaxShardLagMS is the worst fastest-to-
	// slowest shard spread a gateway reported for one advance (0 against
	// a single server).
	Advances      int                  `json:"advances"`
	AdvanceErrors int                  `json:"advance_errors"`
	Advance       stats.LatencySummary `json:"advance_latency"`
	MaxShardLagMS int64                `json:"max_shard_lag_ms"`

	FinalEpoch   int          `json:"final_epoch"`
	FinalHorizon simtime.Time `json:"final_horizon"`

	// ShardRouted counts acks per shard label when the target is a
	// gateway (its acks carry a "shard" field); empty for a single
	// server.
	ShardRouted map[string]int `json:"shard_routed,omitempty"`
}

// ack is the superset of the server's and the gateway's reservation
// replies the harness cares about.
type ack struct {
	Accepted bool   `json:"accepted"`
	EpochDue bool   `json:"epoch_due"`
	Shard    string `json:"shard"`
}

// advanceReply is the slice of the (server or gateway) advance response
// the harness reads; the gateway adds lag_ms.
type advanceReply struct {
	Epoch   int          `json:"epoch"`
	Horizon simtime.Time `json:"horizon"`
	LagMS   int64        `json:"lag_ms"`
}

type worker struct {
	submitted, accepted, shed, late, errors int
	latencies                               []time.Duration
	errSamples                              []string
	shards                                  map[string]int
	causes                                  map[string]int
}

// causeOf buckets a transport-level submit failure. Timeouts (the
// request deadline blew, wherever it was spent) are separated from
// connection-level death so a chaos run can tell gray failure from hard
// partition in the report.
func causeOf(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	return "connection"
}

// causeOfStatus buckets an unexpected reply status: all 5xx fold into
// one cause (server or gateway failing), anything else keeps its code.
func causeOfStatus(code int) string {
	if code >= 500 {
		return "5xx"
	}
	return fmt.Sprintf("status_%d", code)
}

// Run replays the trace against cfg.Target and reports the measurement.
// The trace is consumed through the TraceReader iterator, so arbitrarily
// long traces replay in constant memory. Run returns early only on
// context cancellation or a trace read error; per-request failures are
// counted, not fatal.
func Run(ctx context.Context, cfg Config, trace workload.TraceReader) (*Result, error) {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	feed := make(chan workload.Request, cfg.Concurrency*2)
	var readErr error
	go func() {
		defer close(feed)
		for {
			r, err := trace.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = err
				return
			}
			select {
			case feed <- r:
			case <-ctx.Done():
				return
			}
		}
	}()

	adv := &advancer{
		cfg:    cfg,
		client: client,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if !cfg.DisableAdvance {
		go adv.loop(ctx)
	}

	workers := make([]worker, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.shards = make(map[string]int)
			w.causes = make(map[string]int)
			for req := range feed {
				submit(ctx, cfg, client, adv, w, req)
				if ctx.Err() != nil {
					return
				}
			}
		}(&workers[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if !cfg.DisableAdvance {
		adv.close()
	}
	if readErr != nil {
		return nil, readErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		Target:        cfg.Target,
		Concurrency:   cfg.Concurrency,
		ElapsedMS:     elapsed.Milliseconds(),
		ShardRouted:   make(map[string]int),
		ErrorsByCause: make(map[string]int),
		Advances:      adv.count,
		AdvanceErrors: adv.errors,
		MaxShardLagMS: adv.maxLagMS,
		FinalEpoch:    adv.lastEpoch,
		FinalHorizon:  adv.lastHorizon,
	}
	var lat []time.Duration
	for i := range workers {
		w := &workers[i]
		res.Submitted += w.submitted
		res.Accepted += w.accepted
		res.Shed += w.shed
		res.Late += w.late
		res.Errors += w.errors
		lat = append(lat, w.latencies...)
		for s, n := range w.shards {
			res.ShardRouted[s] += n
		}
		for c, n := range w.causes {
			res.ErrorsByCause[c] += n
		}
		for _, e := range w.errSamples {
			if len(res.ErrorSamples) < 5 {
				res.ErrorSamples = append(res.ErrorSamples, e)
			}
		}
	}
	sort.Strings(res.ErrorSamples)
	if len(res.ShardRouted) == 0 {
		res.ShardRouted = nil
	}
	if len(res.ErrorsByCause) == 0 {
		res.ErrorsByCause = nil
	}
	if res.Submitted > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Submitted)
		res.Availability = float64(res.Accepted) / float64(res.Submitted)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.AcceptedPerSec = float64(res.Accepted) / secs
	}
	res.Submit = stats.SummarizeLatency(lat)
	res.Advance = stats.SummarizeLatency(adv.latencies)
	return res, nil
}

// submit posts one reservation and classifies the outcome. Arrival time
// is the request's start instant (the trace is chronological, so the
// service's reservation clock moves with the replay).
func submit(ctx context.Context, cfg Config, client *http.Client, adv *advancer, w *worker, req workload.Request) {
	w.submitted++
	body, err := json.Marshal(req)
	if err != nil {
		w.errors++
		return
	}
	t0 := time.Now()
	resp, err := post(ctx, client, cfg.Target+"/v1/reservations", body)
	took := time.Since(t0)
	if err != nil {
		w.errors++
		w.causes[causeOf(err)]++
		w.sample(err.Error())
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	w.latencies = append(w.latencies, took)
	switch resp.StatusCode {
	case http.StatusAccepted:
		w.accepted++
		var a ack
		if json.NewDecoder(resp.Body).Decode(&a) == nil {
			if a.Shard != "" {
				w.shards[a.Shard]++
			}
			adv.observe(req.Start)
			if a.EpochDue {
				adv.trigger()
			}
		}
	case http.StatusTooManyRequests:
		w.shed++
	case http.StatusConflict:
		w.late++
	default:
		w.errors++
		w.causes[causeOfStatus(resp.StatusCode)]++
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		w.sample(fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b)))
	}
}

func (w *worker) sample(msg string) {
	if len(w.errSamples) < 5 {
		w.errSamples = append(w.errSamples, msg)
	}
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

// advancer serializes epoch closes: workers that see an EpochDue ack
// kick it, concurrent kicks coalesce, and each advance targets the
// highest arrival instant observed so far minus the configured lag —
// mirroring the gateway's auto-advance so the harness never pushes the
// commit horizon past in-flight arrivals.
type advancer struct {
	cfg    Config
	client *http.Client

	maxAt atomic.Int64 // highest arrival instant submitted
	kick  chan struct{}
	done  chan struct{}

	mu          sync.Mutex
	count       int
	errors      int
	latencies   []time.Duration
	maxLagMS    int64
	lastEpoch   int
	lastHorizon simtime.Time
	lastTo      simtime.Time
}

func (a *advancer) observe(at simtime.Time) {
	for {
		cur := a.maxAt.Load()
		if int64(at) <= cur || a.maxAt.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

func (a *advancer) trigger() {
	select {
	case a.kick <- struct{}{}:
	default: // an advance is already pending; it will observe our maxAt
	}
}

func (a *advancer) loop(ctx context.Context) {
	for {
		select {
		case <-a.kick:
			a.advance(ctx)
		case <-a.done:
			// Drain one final pending kick so EpochDue state observed
			// just before shutdown still closes its epoch.
			select {
			case <-a.kick:
				a.advance(ctx)
			default:
			}
			close(a.kick)
			return
		case <-ctx.Done():
			close(a.kick)
			return
		}
	}
}

func (a *advancer) close() {
	close(a.done)
	// Wait for the loop to drain: kick is closed by the loop on exit.
	for range a.kick {
	}
}

func (a *advancer) advance(ctx context.Context) {
	to := simtime.Time(a.maxAt.Load()) - simtime.Time(a.cfg.AdvanceLag)
	a.mu.Lock()
	if to <= a.lastTo {
		a.mu.Unlock()
		return
	}
	a.lastTo = to
	a.mu.Unlock()

	body, _ := json.Marshal(map[string]simtime.Time{"to": to})
	t0 := time.Now()
	resp, err := post(ctx, a.client, a.cfg.Target+"/v1/advance", body)
	took := time.Since(t0)

	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		a.errors++
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		a.errors++
		return
	}
	var rep advanceReply
	if json.NewDecoder(resp.Body).Decode(&rep) != nil {
		a.errors++
		return
	}
	a.count++
	a.latencies = append(a.latencies, took)
	if rep.LagMS > a.maxLagMS {
		a.maxLagMS = rep.LagMS
	}
	if rep.Epoch > a.lastEpoch {
		a.lastEpoch = rep.Epoch
	}
	if rep.Horizon > a.lastHorizon {
		a.lastHorizon = rep.Horizon
	}
}
