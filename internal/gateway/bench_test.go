package gateway_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/workload"
)

// Submit-path throughput through the gateway: one shard versus three.
// Each shard serializes intake on its service lock, so with concurrent
// clients (run these with -cpu 4; see the bench-json Makefile target)
// the 3-shard tier admits disjoint request streams in parallel while the
// single server takes them one at a time. benchjson derives
// gateway_submit_speedup_3shards from the matched pair.

func benchSubmit(b *testing.B, shardCount int) {
	r, err := experiment.Build(experiment.Params{
		Storages: 6, UsersPerStorage: 4, Titles: 16,
		CapacityGB: 4, RequestsPerUser: 50, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var shards []gateway.ShardConfig
	for i := 0; i < shardCount; i++ {
		srv, err := server.NewWithOptions(r.Model, server.Options{MaxInFlight: -1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		b.Cleanup(func() { ts.Close(); srv.Close() })
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: ts.URL})
	}
	gw, err := gateway.New(gateway.Config{Shards: shards, Policy: gateway.RoundRobin(), Retry: fastRetry})
	if err != nil {
		b.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	b.Cleanup(func() { gts.Close(); gw.Close() })

	reqs := append(workload.Set(nil), r.Requests...)
	ctx := context.Background()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := reqs[int(next.Add(1))%len(reqs)]
			err := retryhttp.PostJSON(ctx, fastRetry, gts.URL+"/v1/reservations",
				server.ReservationRequest{User: q.User, Video: q.Video, Start: q.Start}, nil)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGatewaySubmit1Server(b *testing.B) { benchSubmit(b, 1) }

func BenchmarkGatewaySubmit3Shards(b *testing.B) { benchSubmit(b, 3) }
