package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
)

func mustNew(t *testing.T, f *testutil.Fig2, opts Options) *Server {
	t.Helper()
	s, err := NewWithOptions(f.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newTestServerWithOptions(t *testing.T, opts Options) (*httptest.Server, *testutil.Fig2) {
	t.Helper()
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustNew(t, f, opts))
	t.Cleanup(ts.Close)
	return ts, f
}

func horizonConfigN(n int) horizon.Config { return horizon.Config{EpochRequests: n} }

// Drive the rolling-horizon endpoints end to end over the Fig. 2 example:
// submit, plan, advance, then verify late arrivals are refused with 409.
func TestHorizonEndpoints(t *testing.T) {
	ts, f := newTestServer(t)

	// Initially the plan is empty at horizon 0.
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	plan := decode[PlanResponse](t, resp)
	if plan.Epoch != 0 || plan.Pending != 0 || len(plan.Schedule.Files) != 0 {
		t.Fatalf("fresh plan not empty: %+v", plan)
	}

	// Submit the three Fig. 2 reservations.
	for i, q := range f.Requests {
		resp := postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{
			User: q.User, Video: q.Video, Start: q.Start,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reservation %d: status %d", i, resp.StatusCode)
		}
		ack := decode[ReservationResponse](t, resp)
		if !ack.Accepted || ack.Pending != i+1 {
			t.Fatalf("reservation %d ack: %+v", i, ack)
		}
	}

	// Advance past the second reservation: the first two freeze.
	h := simtime.Time(120 * int64(simtime.Minute))
	resp2 := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: h})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp2.StatusCode)
	}
	epoch := decode[map[string]any](t, resp2)
	if got := epoch["admitted"].(float64); got != 3 {
		t.Fatalf("admitted %v reservations, want 3", got)
	}
	if got := epoch["frozen_deliveries"].(float64); got != 0 {
		t.Fatalf("first advance froze %v deliveries, want 0 (nothing was committed)", got)
	}

	// A second advance freezes the two reservations behind it and re-plans
	// the one still ahead.
	h2 := simtime.Time(150 * int64(simtime.Minute))
	respAdv := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: h2})
	if respAdv.StatusCode != http.StatusOK {
		t.Fatalf("second advance: status %d", respAdv.StatusCode)
	}
	epoch = decode[map[string]any](t, respAdv)
	if got := epoch["frozen_deliveries"].(float64); got != 2 {
		t.Fatalf("second advance froze %v deliveries, want 2", got)
	}
	if got := epoch["replanned"].(float64); got != 1 {
		t.Fatalf("second advance replanned %v, want 1", got)
	}
	h = h2

	// The plan now carries the committed schedule.
	resp3, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	plan = decode[PlanResponse](t, resp3)
	if plan.Epoch != 2 || plan.Horizon != h || plan.Schedule.NumDeliveries() != 3 {
		t.Fatalf("plan after advance: epoch=%d horizon=%v deliveries=%d",
			plan.Epoch, plan.Horizon, plan.Schedule.NumDeliveries())
	}
	if plan.Cost <= 0 {
		t.Fatalf("committed cost %v", plan.Cost)
	}

	// A reservation starting inside the frozen window is a 409.
	resp4 := postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{
		User: f.Requests[0].User, Video: 0, Start: h - 1,
	})
	if resp4.StatusCode != http.StatusConflict {
		t.Fatalf("late arrival: status %d, want 409", resp4.StatusCode)
	}

	// Moving the horizon backwards is a 400.
	resp5 := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: h - 1})
	if resp5.StatusCode != http.StatusBadRequest {
		t.Fatalf("backwards advance: status %d, want 400", resp5.StatusCode)
	}
}

// Unknown users and titles are rejected up front with 400.
func TestHorizonRejectsMalformedReservation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []ReservationRequest{
		{User: 99, Video: 0, Start: 0},
		{User: 0, Video: 99, Start: 0},
		{User: 0, Video: 0, Start: -1},
	} {
		resp := postJSON(t, ts.URL+"/v1/reservations", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// Epoch triggers configured via Options surface in the intake ack.
func TestHorizonEpochTriggerViaOptions(t *testing.T) {
	ts, f := newTestServerWithOptions(t, Options{Horizon: horizonConfigN(2)})
	q := f.Requests[0]
	resp := postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
	if ack := decode[ReservationResponse](t, resp); ack.EpochDue {
		t.Fatalf("epoch due after one reservation: %+v", ack)
	}
	q = f.Requests[1]
	resp = postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
	ack := decode[ReservationResponse](t, resp)
	if !ack.EpochDue || ack.Trigger != "requests" {
		t.Fatalf("count trigger not reported: %+v", ack)
	}
}

// Each committed advance increments the stats advance counter so advance
// lag is observable from /v1/stats; failed advances don't count.
func TestAdvanceCountersInStats(t *testing.T) {
	ts, f := newTestServer(t)
	readStats := func() HorizonStats {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		return decode[StatsResponse](t, resp).Horizon
	}
	if hs := readStats(); hs.Advances != 0 {
		t.Fatalf("fresh server reports %d advances", hs.Advances)
	}
	q := f.Requests[0]
	postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
	if resp := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: 60}); resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: 120}); resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp.StatusCode)
	}
	// A regressing advance fails and must not count.
	postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: 30})
	if hs := readStats(); hs.Advances != 2 {
		t.Fatalf("advances = %d, want 2 (regressing advance counted?)", hs.Advances)
	}
}
