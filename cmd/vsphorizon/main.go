// Command vsphorizon replays a reservation trace as timed arrivals through
// the rolling-horizon intake service: each reservation "arrives" a lead
// time before it starts, epochs close per the configured trigger, and every
// epoch boundary incrementally extends the committed schedule instead of
// re-solving the whole batch.
//
// Usage:
//
//	vsphorizon -topo topo.json -catalog catalog.json -requests trace.csv \
//	           -lead-hours 2 -epoch-requests 50
//
// With -compare it additionally re-runs the one-shot scheduler over the
// accumulated batch at every epoch boundary, reporting how much work the
// incremental service saves and the cost premium it pays (if any).
//
// With -server the trace is replayed against a running vspserve instead
// of an in-process service: reservations go to POST /v1/reservations and
// epoch boundaries to POST /v1/advance, with jittered-backoff retries on
// transient failures (an overloaded server's 429/Retry-After included).
// The URL may also be a vspgateway fronting several shards — the replay
// then reports per-shard routing counts next to the latency summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/stats"
	"github.com/vodsim/vsp/internal/workload"
)

type options struct {
	topoPath, catPath, reqPath string
	srate, nrate               float64
	metricName, policyName     string
	leadHours                  float64
	epochRequests              int
	epochBytesGB               float64
	epochTickHours             float64
	workers                    int
	compare                    bool
	outPath                    string
	quiet                      bool
	serverURL                  string
}

func main() {
	var o options
	flag.StringVar(&o.topoPath, "topo", "", "topology JSON (required)")
	flag.StringVar(&o.catPath, "catalog", "", "catalog JSON (required)")
	flag.StringVar(&o.reqPath, "requests", "", "reservation trace, JSON or CSV (required)")
	flag.Float64Var(&o.srate, "srate", 5, "storage charging rate ($/GB·hour)")
	flag.Float64Var(&o.nrate, "nrate", 500, "network charging rate ($/GB)")
	flag.StringVar(&o.metricName, "metric", "space-per-cost", "heat metric: period | period-per-cost | space | space-per-cost")
	flag.StringVar(&o.policyName, "policy", "cache-on-route", "caching policy: cache-on-route | cache-at-destination | no-caching")
	flag.Float64Var(&o.leadHours, "lead-hours", 2, "how long before its start each reservation arrives")
	flag.IntVar(&o.epochRequests, "epoch-requests", 50, "close the epoch after this many pending reservations (0 = off)")
	flag.Float64Var(&o.epochBytesGB, "epoch-bytes-gb", 0, "close the epoch after this many GB of pending stream volume (0 = off)")
	flag.Float64Var(&o.epochTickHours, "epoch-tick-hours", 0, "close the epoch every this many hours of arrival time (0 = off)")
	flag.IntVar(&o.workers, "workers", 0, "per-file scheduling fan-out (0 = GOMAXPROCS)")
	flag.BoolVar(&o.compare, "compare", false, "also run the full re-solve baseline at every epoch boundary")
	flag.StringVar(&o.outPath, "out", "", "write the final committed schedule JSON here")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress the per-epoch table")
	flag.StringVar(&o.serverURL, "server", "", "replay against a running vspserve at this base URL instead of in-process (epoch triggers then come from the server's -horizon config)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "vsphorizon:", err)
		os.Exit(1)
	}
}

func parseMetric(s string) (sorp.HeatMetric, error) {
	for _, m := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown heat metric %q", s)
}

func parsePolicy(s string) (ivs.Policy, error) {
	for _, p := range []ivs.Policy{ivs.CacheOnRoute, ivs.CacheAtDestination, ivs.NoCaching} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown caching policy %q", s)
}

// arrival is one reservation and the instant it reaches the intake.
type arrival struct {
	at simtime.Time
	r  workload.Request
}

// buildTrace turns a reservation set into a timed arrival sequence: each
// reservation arrives `lead` before it starts (never before t=0), replayed
// in arrival order.
func buildTrace(reqs workload.Set, lead simtime.Duration) []arrival {
	trace := make([]arrival, len(reqs))
	for i, r := range reqs {
		at := r.Start.Add(-lead)
		if at < 0 {
			at = 0
		}
		trace[i] = arrival{at: at, r: r}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		if trace[i].r.Start != trace[j].r.Start {
			return trace[i].r.Start < trace[j].r.Start
		}
		return trace[i].r.User < trace[j].r.User
	})
	return trace
}

func run(o options) error {
	if o.topoPath == "" || o.catPath == "" || o.reqPath == "" {
		return fmt.Errorf("-topo, -catalog and -requests are required")
	}
	topo, err := cli.LoadTopology(o.topoPath)
	if err != nil {
		return err
	}
	cat, err := cli.LoadCatalog(o.catPath)
	if err != nil {
		return err
	}
	reqs, err := cli.LoadRequestsAuto(o.reqPath, topo, cat)
	if err != nil {
		return err
	}
	if len(reqs) == 0 {
		return fmt.Errorf("empty reservation trace")
	}
	lead := simtime.Duration(o.leadHours * float64(simtime.Hour))
	trace := buildTrace(reqs, lead)
	if o.serverURL != "" {
		if o.compare {
			return fmt.Errorf("-compare needs the in-process service; it cannot run against -server")
		}
		return runRemote(o, trace)
	}
	metric, err := parseMetric(o.metricName)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(o.policyName)
	if err != nil {
		return err
	}
	model := cli.BuildModel(topo, cat, o.srate, o.nrate)
	svc := horizon.New(model, horizon.Config{
		Policy:        policy,
		Metric:        metric,
		EpochRequests: o.epochRequests,
		EpochBytes:    o.epochBytesGB * 1e9,
		EpochTick:     simtime.Duration(o.epochTickHours * float64(simtime.Hour)),
		Workers:       o.workers,
	})

	ctx := context.Background()
	if !o.quiet {
		fmt.Printf("%-6s %-10s %9s %9s %8s %8s %9s %12s %10s\n",
			"epoch", "horizon", "admitted", "replanned", "frozenD", "frozenC", "victims", "cost", "elapsed")
	}
	var (
		incrElapsed time.Duration
		fullElapsed time.Duration
		planned     int
	)
	flush := func(to simtime.Time) error {
		t0 := time.Now()
		res, err := svc.Advance(ctx, to)
		if err != nil {
			return err
		}
		dt := time.Since(t0)
		incrElapsed += dt
		planned += res.Admitted
		if !o.quiet {
			fmt.Printf("%-6d %-10v %9d %9d %8d %8d %9d %12v %10v\n",
				res.Epoch, res.Horizon, res.Admitted, res.Replanned,
				res.FrozenDeliveries, res.FrozenResidencies, len(res.Victims), res.Cost, dt.Round(time.Millisecond))
		}
		if o.compare {
			t1 := time.Now()
			out, err := scheduler.Schedule(ctx, model, svc.Accepted(), scheduler.Config{Metric: metric, Policy: policy})
			if err != nil {
				return fmt.Errorf("full re-solve baseline: %w", err)
			}
			d := time.Since(t1)
			fullElapsed += d
			if !o.quiet {
				fmt.Printf("%-6s %-10s %29s full re-solve %12v %10v\n", "", "", "", out.FinalCost, d.Round(time.Millisecond))
			}
		}
		return nil
	}

	for _, a := range trace {
		ack, err := svc.Submit(a.at, a.r)
		if err != nil {
			return fmt.Errorf("submit (user %d, video %d, %v): %w", a.r.User, a.r.Video, a.r.Start, err)
		}
		if ack.EpochDue {
			if err := flush(a.at); err != nil {
				return err
			}
		}
	}
	if svc.Pending() > 0 {
		if err := flush(trace[len(trace)-1].at); err != nil {
			return err
		}
	}

	fmt.Printf("\nreservations      %d (planned %d over %d epochs)\n", len(reqs), planned, svc.Epoch())
	fmt.Printf("committed cost    %v\n", svc.Cost())
	fmt.Printf("incremental time  %v\n", incrElapsed.Round(time.Millisecond))
	if o.compare {
		fmt.Printf("full-resolve time %v\n", fullElapsed.Round(time.Millisecond))
		if incrElapsed > 0 {
			fmt.Printf("speedup           %.1fx\n", float64(fullElapsed)/float64(incrElapsed))
		}
	}
	if o.outPath != "" {
		return cli.SaveJSON(o.outPath, svc.Committed())
	}
	return nil
}


// remoteStats is the slice of GET /v1/stats this command reports on. A
// vspgateway answers with the per-shard rollup; a plain vspserve has no
// "shards" array and decodes to an empty slice.
type remoteStats struct {
	Policy string `json:"policy"`
	Shards []struct {
		ID      string `json:"id"`
		Primary string `json:"primary"`
		Routed  uint64 `json:"routed"`
		Shed    uint64 `json:"shed"`
		Epoch   int    `json:"epoch"`
	} `json:"shards"`
}

// runRemote replays the trace against a running vspserve — or a
// vspgateway fronting several shards; the surface is the same — over
// HTTP. The retryhttp loop absorbs transient faults: a shed request
// (429 + Retry-After) or a brief outage is retried with jittered backoff
// instead of aborting the replay. Epoch triggers come from the server's
// own horizon configuration, so the local -epoch-* flags are ignored.
// Against a gateway, the summary includes how the placement policy
// spread the trace across shards.
func runRemote(o options, trace []arrival) error {
	ctx := context.Background()
	base := strings.TrimRight(o.serverURL, "/")
	var retry retryhttp.Options
	if !o.quiet {
		fmt.Printf("replaying against %s\n", base)
		fmt.Printf("%-6s %-10s %9s %9s %8s %8s %9s %12s %10s\n",
			"epoch", "horizon", "admitted", "replanned", "frozenD", "frozenC", "victims", "cost", "elapsed")
	}
	var (
		elapsed time.Duration
		planned int
		epochs  int
	)
	flush := func(to simtime.Time) error {
		t0 := time.Now()
		var res horizon.EpochResult
		if err := retryhttp.PostJSON(ctx, retry, base+"/v1/advance", server.AdvanceRequest{To: to}, &res); err != nil {
			return fmt.Errorf("advance to %v: %w", to, err)
		}
		dt := time.Since(t0)
		elapsed += dt
		planned += res.Admitted
		epochs = res.Epoch + 1
		if !o.quiet {
			fmt.Printf("%-6d %-10v %9d %9d %8d %8d %9d %12v %10v\n",
				res.Epoch, res.Horizon, res.Admitted, res.Replanned,
				res.FrozenDeliveries, res.FrozenResidencies, len(res.Victims), res.Cost, dt.Round(time.Millisecond))
		}
		return nil
	}
	pending := 0
	samples := make([]time.Duration, 0, len(trace))
	for _, a := range trace {
		at := a.at
		var ack server.ReservationResponse
		t0 := time.Now()
		err := retryhttp.PostJSON(ctx, retry, base+"/v1/reservations",
			server.ReservationRequest{User: a.r.User, Video: a.r.Video, Start: a.r.Start, At: &at}, &ack)
		if err != nil {
			return fmt.Errorf("submit (user %d, video %d, %v): %w", a.r.User, a.r.Video, a.r.Start, err)
		}
		samples = append(samples, time.Since(t0))
		pending = ack.Pending
		if ack.EpochDue {
			if err := flush(a.at); err != nil {
				return err
			}
			pending = 0
		}
	}
	if pending > 0 {
		if err := flush(trace[len(trace)-1].at); err != nil {
			return err
		}
	}
	var plan server.PlanResponse
	if err := retryhttp.GetJSON(ctx, retry, base+"/v1/plan", &plan); err != nil {
		return fmt.Errorf("fetch final plan: %w", err)
	}
	fmt.Printf("\nreservations      %d (planned %d over %d epochs)\n", len(trace), planned, epochs)
	fmt.Printf("committed cost    %v\n", plan.Cost)
	fmt.Printf("round-trip time   %v\n", elapsed.Round(time.Millisecond))
	// The summary uses the shared nearest-rank percentiles
	// (internal/stats) — exact over the sorted sample set; a replay is
	// thousands of submits at most, so there is no need to sketch.
	ls := stats.SummarizeLatency(samples)
	fmt.Printf("submit latency    p50=%v p99=%v max=%v (%d submits)\n",
		ls.P50.Round(time.Microsecond), ls.P99.Round(time.Microsecond), ls.Max.Round(time.Microsecond), ls.N)
	var st remoteStats
	if err := retryhttp.GetJSON(ctx, retry, base+"/v1/stats", &st); err == nil && len(st.Shards) > 0 {
		fmt.Printf("\nrouting (%s placement across %d shards)\n", st.Policy, len(st.Shards))
		fmt.Printf("%-8s %9s %7s %6s  %s\n", "shard", "routed", "shed", "epoch", "primary")
		for _, sh := range st.Shards {
			fmt.Printf("%-8s %9d %7d %6d  %s\n", sh.ID, sh.Routed, sh.Shed, sh.Epoch, sh.Primary)
		}
	}
	if o.outPath != "" {
		return cli.SaveJSON(o.outPath, plan.Schedule)
	}
	return nil
}
