package pricing

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

func topo3(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 5*units.GB)
	is2 := b.Storage("IS2", 5*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestUniformBook(t *testing.T) {
	topo := topo3(t)
	book := Uniform(topo, PerGBSec(5), PerGB(300))
	if book.Topology() != topo {
		t.Error("Topology() mismatch")
	}
	if book.Mode() != PerHop {
		t.Error("default mode must be per-hop")
	}
	vw := topo.Warehouse()
	if book.SRate(vw) != 0 {
		t.Error("warehouse srate must be zero")
	}
	is1, _ := topo.Lookup("IS1")
	want := SRate(5.0 / 1e9)
	if math.Abs(float64(book.SRate(is1)-want)) > 1e-18 {
		t.Errorf("srate = %v, want %v", book.SRate(is1), want)
	}
	for i := 0; i < topo.NumEdges(); i++ {
		if math.Abs(float64(book.NRate(i))-300.0/1e9) > 1e-18 {
			t.Errorf("nrate edge %d = %v", i, book.NRate(i))
		}
	}
}

func TestRateConversions(t *testing.T) {
	// 1 $/GB·s on a 2.5 GB file for 1 hour: 2.5e9 bytes * 3600 s * 1/1e9.
	s := PerGBSec(1)
	cost := float64(s) * 2.5e9 * 3600
	if math.Abs(cost-9000) > 1e-6 {
		t.Errorf("storage cost = %g, want 9000", cost)
	}
	n := PerGB(300)
	if math.Abs(float64(n)*1e9-300) > 1e-9 {
		t.Errorf("PerGB(300) round trip failed: %v", n)
	}
}

func TestSetters(t *testing.T) {
	topo := topo3(t)
	book := Uniform(topo, PerGBSec(3), PerGB(500))
	is1, _ := topo.Lookup("IS1")
	if err := book.SetSRate(is1, PerGBSec(7)); err != nil {
		t.Fatalf("SetSRate: %v", err)
	}
	if book.SRate(is1) != PerGBSec(7) {
		t.Error("SetSRate not applied")
	}
	if err := book.SetSRate(topo.Warehouse(), PerGBSec(1)); err == nil {
		t.Error("expected error setting warehouse srate")
	}
	if err := book.SetSRate(topo.Warehouse(), 0); err != nil {
		t.Error("setting warehouse srate to zero must be allowed")
	}
	book.SetNRate(0, PerGB(50))
	if book.NRate(0) != PerGB(50) {
		t.Error("SetNRate not applied")
	}
}

func TestEndToEndOverride(t *testing.T) {
	topo := topo3(t)
	book := Uniform(topo, PerGBSec(3), PerGB(500))
	vw := topo.Warehouse()
	is2, _ := topo.Lookup("IS2")
	if _, ok := book.EndToEndOverride(vw, is2); ok {
		t.Error("unexpected override present")
	}
	book.SetEndToEnd(vw, is2, PerGB(123))
	got, ok := book.EndToEndOverride(vw, is2)
	if !ok || got != PerGB(123) {
		t.Errorf("override = %v ok=%v", got, ok)
	}
	if _, ok := book.EndToEndOverride(is2, vw); ok {
		t.Error("override must be ordered")
	}
}

func TestRouteRate(t *testing.T) {
	topo := topo3(t)
	book := Uniform(topo, PerGBSec(3), PerGB(100))
	vw := topo.Warehouse()
	is1, _ := topo.Lookup("IS1")
	is2, _ := topo.Lookup("IS2")
	got := book.RouteRate([]topology.NodeID{vw, is1, is2})
	if math.Abs(float64(got-PerGB(200))) > 1e-18 {
		t.Errorf("RouteRate = %v, want %v", got, PerGB(200))
	}
	if book.RouteRate([]topology.NodeID{vw}) != 0 {
		t.Error("single-node route must be free")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-adjacent hop")
		}
	}()
	book.RouteRate([]topology.NodeID{vw, is2})
}

func TestModeString(t *testing.T) {
	if PerHop.String() != "per-hop" || EndToEnd.String() != "end-to-end" {
		t.Error("Mode.String wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode string wrong")
	}
}

func TestRandomizedRates(t *testing.T) {
	topo := topo3(t)
	book := Uniform(topo, 0, 0)
	book.RandomizeSRates(PerGBSec(1), PerGBSec(5), 7)
	book.RandomizeNRates(PerGB(100), PerGB(900), 7)
	// Warehouse stays zero.
	if book.SRate(topo.Warehouse()) != 0 {
		t.Error("warehouse srate must remain zero")
	}
	for _, id := range topo.Storages() {
		r := book.SRate(id)
		if r < PerGBSec(1) || r > PerGBSec(5) {
			t.Errorf("srate %v out of range", r)
		}
	}
	for i := 0; i < topo.NumEdges(); i++ {
		r := book.NRate(i)
		if r < PerGB(100) || r > PerGB(900) {
			t.Errorf("nrate %v out of range", r)
		}
	}
	// Deterministic.
	book2 := Uniform(topo, 0, 0)
	book2.RandomizeSRates(PerGBSec(1), PerGBSec(5), 7)
	for _, id := range topo.Storages() {
		if book.SRate(id) != book2.SRate(id) {
			t.Error("RandomizeSRates not deterministic")
		}
	}
}
