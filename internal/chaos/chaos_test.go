package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newBackend(t *testing.T, hits *atomic.Int64, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, string(b), err
}

// Same seed, same rules, same call sequence => identical fault decisions.
func TestSeedDeterminism(t *testing.T) {
	srv := newBackend(t, nil, "ok")
	run := func(seed int64) []int {
		in := New(seed, Rule{Fault: Fault{ErrProb: 0.5, Code: 503}})
		client := &http.Client{Transport: &Transport{Injector: in}}
		var codes []int
		for i := 0; i < 64; i++ {
			resp, _, err := get(t, client, srv.URL)
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 64-call fault sequences")
	}
	saw503 := false
	for _, code := range a {
		if code == 503 {
			saw503 = true
		}
	}
	if !saw503 {
		t.Fatalf("ErrProb 0.5 never fired in 64 calls")
	}
}

// A flapping drop rule on a virtual clock is exact: active during the
// duty fraction of each period, silent otherwise, gone after Until.
func TestFlapDutyCycleVirtualClock(t *testing.T) {
	srv := newBackend(t, nil, "ok")
	vc := NewVirtualClock(time.Unix(1000, 0))
	in := NewWithClock(vc, 1, Rule{
		Until:  time.Second,
		Period: 100 * time.Millisecond,
		Duty:   0.5,
		Fault:  Fault{Drop: 1},
	})
	client := &http.Client{Transport: &Transport{Injector: in}}

	probe := func() bool {
		_, _, err := get(t, client, srv.URL)
		return err != nil
	}
	for i, step := range []struct {
		advance time.Duration
		dropped bool
	}{
		{0, true},                       // elapsed 0: in duty window
		{30 * time.Millisecond, true},   // 30ms: still active
		{30 * time.Millisecond, false},  // 60ms: past 50% duty
		{30 * time.Millisecond, false},  // 90ms: still off
		{30 * time.Millisecond, true},   // 120ms: next period
		{940 * time.Millisecond, false}, // 1.06s: window expired
	} {
		vc.Advance(step.advance)
		if got := probe(); got != step.dropped {
			t.Fatalf("step %d (elapsed %v): dropped=%v, want %v", i, in.Elapsed(), got, step.dropped)
		}
	}
	if s := in.Stats(); s.Dropped == 0 {
		t.Fatalf("stats recorded no drops: %+v", s)
	}
}

// An asymmetric partition: A's client cannot reach B while B's client
// still reaches A, because the faults live in each caller's transport.
func TestAsymmetricPartition(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	srvA := newBackend(t, &hitsA, "a")
	srvB := newBackend(t, &hitsB, "b")

	hostB := strings.TrimPrefix(srvB.URL, "http://")
	clientA := &http.Client{Transport: &Transport{
		Injector: New(3, Rule{Host: hostB, Fault: Fault{Drop: 1}}),
	}}
	clientB := &http.Client{Transport: &Transport{Injector: New(4)}}

	if _, _, err := get(t, clientA, srvB.URL); err == nil {
		t.Fatalf("A -> B should be dead")
	}
	if hitsB.Load() != 0 {
		t.Fatalf("dropped request still reached B")
	}
	if _, body, err := get(t, clientB, srvA.URL); err != nil || body != "a" {
		t.Fatalf("B -> A should be fine, got body=%q err=%v", body, err)
	}
	// And A can still reach other hosts: the rule is scoped to B.
	if _, body, err := get(t, clientA, srvA.URL); err != nil || body != "a" {
		t.Fatalf("A -> A should be fine, got body=%q err=%v", body, err)
	}
}

func TestTransportCutBody(t *testing.T) {
	srv := newBackend(t, nil, strings.Repeat("x", 1000))

	dirty := &http.Client{Transport: &Transport{
		Injector: New(5, Rule{Fault: Fault{CutProb: 1, CutAfter: 10}}),
	}}
	resp, err := dirty.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("dirty cut: want io.ErrUnexpectedEOF, got %v (read %d bytes)", err, len(b))
	}
	if len(b) != 10 {
		t.Fatalf("dirty cut kept %d bytes, want 10", len(b))
	}

	clean := &http.Client{Transport: &Transport{
		Injector: New(5, Rule{Fault: Fault{CutProb: 1, CutAfter: 10, CutClean: true}}),
	}}
	_, body, err := get(t, clean, srv.URL)
	if err != nil {
		t.Fatalf("clean cut should read without error, got %v", err)
	}
	if body != strings.Repeat("x", 10) {
		t.Fatalf("clean cut body = %q", body)
	}
}

// Injected latency is applied before the request is forwarded, so a
// context that expires mid-delay means the upstream never saw the call.
func TestLatencyPreForwardRespectsContext(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits, "ok")
	in := New(6, Rule{Fault: Fault{LatencyMin: time.Second, LatencyMax: time.Second}})
	client := &http.Client{Transport: &Transport{Injector: in}}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatalf("expected context expiry")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("context expiry took %v, delay was not abortable", el)
	}
	if hits.Load() != 0 {
		t.Fatalf("delayed-then-cancelled request reached the backend")
	}
}

func TestMiddleware(t *testing.T) {
	newSrv := func(in *Injector, body string) *httptest.Server {
		srv := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, body)
		})))
		t.Cleanup(srv.Close)
		return srv
	}

	t.Run("error injection", func(t *testing.T) {
		srv := newSrv(New(9, Rule{Fault: Fault{ErrProb: 1, Code: 502}}), "ok")
		resp, body, err := get(t, http.DefaultClient, srv.URL)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if resp.StatusCode != 502 || !strings.Contains(body, "chaos") {
			t.Fatalf("got %d %q", resp.StatusCode, body)
		}
	})

	t.Run("drop aborts connection", func(t *testing.T) {
		srv := newSrv(New(9, Rule{Fault: Fault{Drop: 1}}), "ok")
		if _, _, err := get(t, http.DefaultClient, srv.URL); err == nil {
			t.Fatalf("dropped connection should error")
		}
	})

	t.Run("path scoping", func(t *testing.T) {
		srv := newSrv(New(9, Rule{Path: "/bad", Fault: Fault{ErrProb: 1, Code: 503}}), "ok")
		resp, _, err := get(t, http.DefaultClient, srv.URL+"/good")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("unscoped path: %v %v", resp, err)
		}
		resp, _, err = get(t, http.DefaultClient, srv.URL+"/bad/sub")
		if err != nil || resp.StatusCode != 503 {
			t.Fatalf("scoped path prefix: %v %v", resp, err)
		}
	})

	t.Run("dirty cut tears body", func(t *testing.T) {
		srv := newSrv(New(9, Rule{Fault: Fault{CutProb: 1, CutAfter: 5}}), strings.Repeat("y", 4096))
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil {
			t.Fatalf("dirty middleware cut should tear the read, got %d clean bytes", len(b))
		}
	})

	t.Run("clean cut truncates body", func(t *testing.T) {
		srv := newSrv(New(9, Rule{Fault: Fault{CutProb: 1, CutAfter: 5, CutClean: true}}), "1234567890")
		_, body, err := get(t, http.DefaultClient, srv.URL)
		if err != nil {
			t.Fatalf("clean cut read: %v", err)
		}
		if body != "12345" {
			t.Fatalf("clean cut body = %q, want %q", body, "12345")
		}
	})
}

func TestRandomRulesDeterministicAndBounded(t *testing.T) {
	hosts := []string{"h1:1", "h2:2", "h3:3"}
	a := RandomRules(42, hosts, 4*time.Second)
	b := RandomRules(42, hosts, 4*time.Second)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("rule counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	perHost := map[string]int{}
	for _, r := range a {
		if r.Until <= r.From || r.Until > 4*time.Second {
			t.Fatalf("rule window out of bounds: %+v", r)
		}
		if r.Fault.CutProb > 0 && r.Path != "/v1/plan" {
			t.Fatalf("cut rule not scoped to reads: %+v", r)
		}
		perHost[r.Host]++
	}
	for _, h := range hosts {
		if perHost[h] == 0 {
			t.Fatalf("host %s got no episodes", h)
		}
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("latency=50ms..200ms,from=10s,until=30s,host=a:1; err=0.3:502,period=2s,duty=0.5,path=/v1/plan")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	r0 := rules[0]
	if r0.Host != "a:1" || r0.From != 10*time.Second || r0.Until != 30*time.Second ||
		r0.Fault.LatencyMin != 50*time.Millisecond || r0.Fault.LatencyMax != 200*time.Millisecond {
		t.Fatalf("rule 0 = %+v", r0)
	}
	r1 := rules[1]
	if r1.Fault.ErrProb != 0.3 || r1.Fault.Code != 502 || r1.Period != 2*time.Second || r1.Duty != 0.5 || r1.Path != "/v1/plan" {
		t.Fatalf("rule 1 = %+v", r1)
	}

	for _, bad := range []string{
		"",
		"bogus=1",
		"latency=xyz",
		"drop=1,period=5s", // flapping without duty
		"err",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}
