package gateway

import (
	"context"
	"net/http"
	"sync"

	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/units"
)

// The merged plan: shards partition the reservation stream, not the
// catalog, so two shards may both have scheduled copies of one title.
// Merging a file therefore concatenates record lists and rebases every
// index-valued cross-reference by the receiving file's offsets.

// MergeSchedules unions per-shard committed schedules into one global
// schedule. Parts are merged in the order given, so the result is
// deterministic in shard order; sentinel references (NoResidency,
// PrePlacedFeed) are preserved. The inputs are not mutated.
func MergeSchedules(parts ...*schedule.Schedule) *schedule.Schedule {
	out := schedule.New()
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, vid := range p.VideoIDs() {
			mergeFile(out, p.Files[vid])
		}
	}
	return out
}

func mergeFile(dst *schedule.Schedule, fs *schedule.FileSchedule) {
	cur := dst.File(fs.Video)
	if cur == nil {
		dst.Put(fs.Clone())
		return
	}
	dOff, rOff := len(cur.Deliveries), len(cur.Residencies)
	for _, d := range fs.Deliveries {
		d.Route = d.Route.Clone()
		if d.SourceResidency != schedule.NoResidency {
			d.SourceResidency += rOff
		}
		cur.Deliveries = append(cur.Deliveries, d)
	}
	for _, c := range fs.Residencies {
		services := make([]int, len(c.Services))
		for i, s := range c.Services {
			services[i] = s + dOff
		}
		c.Services = services
		if c.FedBy != schedule.PrePlacedFeed {
			c.FedBy += dOff
		}
		cur.Residencies = append(cur.Residencies, c)
	}
}

// ShardPlan is one shard's slice of the gateway's GET /v1/plan reply.
type ShardPlan struct {
	Shard   string       `json:"shard"`
	Epoch   int          `json:"epoch"`
	Horizon simtime.Time `json:"horizon"`
	Pending int          `json:"pending"`
	Cost    units.Money  `json:"cost"`
}

// PlanResponse is the gateway's GET /v1/plan reply: the merged global
// schedule with the same top-level shape a single server answers
// (Horizon is the slowest shard's commit horizon, Epoch the largest
// shard epoch, Pending and Cost tier totals — Ψ is additive across the
// partition), plus the per-shard breakdown.
type PlanResponse struct {
	Schedule *schedule.Schedule `json:"schedule"`
	Horizon  simtime.Time       `json:"horizon"`
	Epoch    int                `json:"epoch"`
	Pending  int                `json:"pending"`
	Cost     units.Money        `json:"cost"`
	Shards   []ShardPlan        `json:"shards"`
}

func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	res, sh, err := g.planAll(r.Context())
	if err != nil {
		writeUpstreamErr(w, sh, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// planAll fetches every shard's plan concurrently and merges them. On
// failure it returns the offending shard.
func (g *Gateway) planAll(ctx context.Context) (PlanResponse, *shard, error) {
	plans := make([]server.PlanResponse, len(g.shards))
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, sh := range g.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.outstanding.Add(1)
			defer sh.outstanding.Add(-1)
			errs[i] = g.forward(ctx, sh, func(base string) error {
				return retryhttp.GetJSON(ctx, g.retry, base+"/v1/plan", &plans[i])
			})
		}(i, sh)
	}
	wg.Wait()
	var out PlanResponse
	parts := make([]*schedule.Schedule, len(g.shards))
	for i, err := range errs {
		if err != nil {
			return out, g.shards[i], err
		}
		p := plans[i]
		parts[i] = p.Schedule
		if i == 0 || p.Horizon < out.Horizon {
			out.Horizon = p.Horizon
		}
		if p.Epoch > out.Epoch {
			out.Epoch = p.Epoch
		}
		out.Pending += p.Pending
		out.Cost += p.Cost
		out.Shards = append(out.Shards, ShardPlan{
			Shard: g.shards[i].id, Epoch: p.Epoch, Horizon: p.Horizon,
			Pending: p.Pending, Cost: p.Cost,
		})
	}
	out.Schedule = MergeSchedules(parts...)
	return out, nil, nil
}
