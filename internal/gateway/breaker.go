package gateway

import (
	"sync"
	"time"
)

// Per-shard circuit breaking: placement stops routing to a shard whose
// recent intake calls fail or crawl (a *gray* failure — the shard still
// answers, too slowly to be useful), and lets it back in through a
// single half-open probe once a cool-off has passed. The classic state
// machine:
//
//	closed ──(failure+slow rate over the sliding window)──▶ open
//	open   ──(OpenFor elapsed; next placement probes)─────▶ half-open
//	half-open ──(probe succeeds)──▶ closed   (probe fails)──▶ open
//
// Only real intake traffic moves the machine, so a breaker can never
// wedge open: after OpenFor the next reservation is admitted as the
// probe, and its outcome decides.

// Breaker defaults for the zero BreakerConfig value.
const (
	DefaultBreakerWindow      = 10 * time.Second
	DefaultBreakerBuckets     = 10
	DefaultBreakerMinSamples  = 5
	DefaultBreakerFailureRate = 0.5
	DefaultBreakerOpenFor     = 5 * time.Second
)

// BreakerConfig tunes the per-shard circuit breakers. The zero value
// enables breakers with the defaults; set Disabled to run without them.
type BreakerConfig struct {
	// Disabled turns circuit breaking off entirely.
	Disabled bool
	// Window is the sliding observation window (default 10s), counted
	// in Buckets rotating sub-spans (default 10) so old outcomes age
	// out incrementally.
	Window  time.Duration
	Buckets int
	// MinSamples is the minimum number of window outcomes before the
	// breaker may trip (default 5) — a single failed call on an idle
	// shard is not a statement about the shard.
	MinSamples int
	// FailureRate trips the breaker when (failures+slow)/total over the
	// window reaches it (default 0.5).
	FailureRate float64
	// SlowCall counts an intake call slower than this as bad even if it
	// succeeded — the gray-failure signal (0 disables slow accounting).
	SlowCall time.Duration
	// OpenFor is the cool-off before an open breaker admits its
	// half-open probe (default 5s).
	OpenFor time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = DefaultBreakerWindow
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBreakerBuckets
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultBreakerMinSamples
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = DefaultBreakerFailureRate
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultBreakerOpenFor
	}
	return c
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// brkBucket is one rotating sub-span of the sliding window. idx is the
// absolute bucket number it currently holds, so stale buckets are
// detected lazily instead of by a sweeper goroutine.
type brkBucket struct {
	idx      int64
	ok, fail int
}

// breaker is one shard's circuit breaker. A nil *breaker is the
// disabled breaker: it admits everything and records nothing.
type breaker struct {
	cfg BreakerConfig

	mu         sync.Mutex
	state      breakerState
	buckets    []brkBucket
	openedAt   time.Time
	lastChange time.Time
	probing    bool
	ejections  uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.Disabled {
		return nil
	}
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, buckets: make([]brkBucket, cfg.Buckets)}
}

func (b *breaker) bucketWidth() time.Duration {
	return b.cfg.Window / time.Duration(b.cfg.Buckets)
}

// bucketAt returns the live bucket for now, resetting it if it still
// holds an aged-out span. Callers hold b.mu.
func (b *breaker) bucketAt(now time.Time) *brkBucket {
	idx := now.UnixNano() / int64(b.bucketWidth())
	bk := &b.buckets[idx%int64(b.cfg.Buckets)]
	if bk.idx != idx {
		*bk = brkBucket{idx: idx}
	}
	return bk
}

// windowTotals sums the still-fresh buckets. Callers hold b.mu.
func (b *breaker) windowTotals(now time.Time) (ok, fail int) {
	oldest := now.UnixNano()/int64(b.bucketWidth()) - int64(b.cfg.Buckets) + 1
	for _, bk := range b.buckets {
		if bk.idx >= oldest {
			ok += bk.ok
			fail += bk.fail
		}
	}
	return ok, fail
}

// allow reports whether placement may route to this shard. An open
// breaker past its cool-off transitions to half-open and admits the
// caller as the single probe; place must release unused probe slots
// (the policy may pick another shard) via release.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = stateHalfOpen
		b.lastChange = now
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// release returns an unused half-open probe slot (the placement policy
// admitted this shard but routed elsewhere).
func (b *breaker) release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == stateHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// record feeds one call outcome into the window. failed marks hard
// failures (5xx, transport death, blown deadline); a successful call
// slower than SlowCall counts as bad anyway. Outcomes arriving while
// the breaker is open (stragglers from before the trip) are dropped.
func (b *breaker) record(now time.Time, dur time.Duration, failed bool) {
	if b == nil {
		return
	}
	bad := failed || (b.cfg.SlowCall > 0 && dur >= b.cfg.SlowCall)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return
	case stateHalfOpen:
		// Any outcome in half-open settles the probe: one good call
		// closes the breaker, one bad call re-opens it.
		b.probing = false
		if bad {
			b.trip(now)
		} else {
			b.state = stateClosed
			b.lastChange = now
			for i := range b.buckets {
				b.buckets[i] = brkBucket{}
			}
		}
		return
	}
	bk := b.bucketAt(now)
	if bad {
		bk.fail++
	} else {
		bk.ok++
	}
	ok, fail := b.windowTotals(now)
	if total := ok + fail; total >= b.cfg.MinSamples &&
		float64(fail)/float64(total) >= b.cfg.FailureRate {
		b.trip(now)
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = stateOpen
	b.openedAt = now
	b.lastChange = now
	b.probing = false
	b.ejections++
}

// viable is the non-mutating readiness check: true when the shard is
// routable now or would admit a probe (open past its cool-off). Unlike
// allow it never transitions state and never claims the probe slot, so
// /readyz can ask freely.
func (b *breaker) viable(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateOpen {
		return now.Sub(b.openedAt) >= b.cfg.OpenFor
	}
	return true
}

// BreakerStatus is the observability snapshot of one shard's breaker in
// GET /v1/stats.
type BreakerStatus struct {
	State      string `json:"state"`
	Ejections  uint64 `json:"ejections"`
	WindowOK   int    `json:"window_ok"`
	WindowFail int    `json:"window_fail"`
	// SinceMS is how long the breaker has been in its current state.
	SinceMS int64 `json:"since_ms"`
}

func (b *breaker) status(now time.Time) *BreakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ok, fail := b.windowTotals(now)
	st := &BreakerStatus{
		State:      b.state.String(),
		Ejections:  b.ejections,
		WindowOK:   ok,
		WindowFail: fail,
	}
	if !b.lastChange.IsZero() {
		st.SinceMS = now.Sub(b.lastChange).Milliseconds()
	}
	return st
}
