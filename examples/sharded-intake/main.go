// Sharded intake: a routing gateway spreads reservation traffic across
// three independent horizon shards while presenting the single-server
// surface. This example walks the tier's whole story in one process:
//
//  1. start three shards — two in-memory, one a durable primary with a
//     warm standby shipping its WAL — behind a gateway routing by the
//     locality policy (each neighborhood's region owns a shard),
//  2. submit the early part of a reservation trace and show how the
//     policy spread it,
//  3. broadcast an epoch advance and merge the per-shard plans,
//  4. kill the durable shard's primary mid-trace and let the gateway
//     promote the standby by itself,
//  5. finish the trace and validate the final merged schedule against
//     the full workload — no accepted reservation was lost.
//
// The placement policies' load behavior under overload (shed-rate
// comparison on a skewed workload) is measured in
// internal/gateway/study_test.go.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	vsp "github.com/vodsim/vsp"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/workload"
)

// serve binds h to a loopback port and returns its base URL.
func serve(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }
}

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 6, UsersPerStorage: 4, Capacity: vsp.GB(6),
	}, 31)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 24, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Seed: 32})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Start != reqs[j].Start {
			return reqs[i].Start < reqs[j].Start
		}
		return reqs[i].User < reqs[j].User
	})
	model := cli.BuildModel(topo, catalog, 5, 500)
	ctx := context.Background()
	var retry retryhttp.Options

	// Shards s0 and s2 are plain in-memory nodes; s1 journals to disk and
	// feeds a warm standby, so it is the one that can survive a kill.
	s0, err := server.NewWithOptions(model, server.Options{ShardID: "s0"})
	if err != nil {
		log.Fatal(err)
	}
	s0URL, stop0 := serve(s0)
	defer stop0()

	primaryDir, err := os.MkdirTemp("", "vsp-shard1-primary-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(primaryDir)
	standbyDir, err := os.MkdirTemp("", "vsp-shard1-standby-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(standbyDir)
	s1, err := server.NewWithOptions(model, server.Options{ShardID: "s1", DataDir: primaryDir})
	if err != nil {
		log.Fatal(err)
	}
	s1URL, stop1 := serve(s1)
	s1standby, err := server.NewWithOptions(model, server.Options{
		ShardID: "s1", DataDir: standbyDir,
		ReplicateFrom: s1URL, ReplicateEvery: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	s1standbyURL, stopStandby := serve(s1standby)
	defer stopStandby()
	s1standby.StartReplication(ctx)

	s2, err := server.NewWithOptions(model, server.Options{ShardID: "s2"})
	if err != nil {
		log.Fatal(err)
	}
	s2URL, stop2 := serve(s2)
	defer stop2()

	gw, err := vsp.NewGateway(vsp.GatewayConfig{
		Shards: []vsp.GatewayShard{
			{ID: "s0", Primary: s0URL},
			{ID: "s1", Primary: s1URL, Standby: s1standbyURL},
			{ID: "s2", Primary: s2URL},
		},
		Policy: vsp.LocalityPlacement(),
		Topo:   topo,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	gwURL, stopGW := serve(gw)
	defer stopGW()
	fmt.Printf("gateway %s routing 3 shards by locality\n", gwURL)

	submit := func(r vsp.Request) {
		err := retryhttp.PostJSON(ctx, retry, gwURL+"/v1/reservations",
			server.ReservationRequest{User: r.User, Video: r.Video, Start: r.Start}, nil)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	advance := func(to vsp.Time) gateway.AdvanceResponse {
		var res gateway.AdvanceResponse
		if err := retryhttp.PostJSON(ctx, retry, gwURL+"/v1/advance", server.AdvanceRequest{To: to}, &res); err != nil {
			log.Fatalf("advance: %v", err)
		}
		return res
	}
	stats := func() gateway.StatsResponse {
		var st gateway.StatsResponse
		if err := retryhttp.GetJSON(ctx, retry, gwURL+"/v1/stats", &st); err != nil {
			log.Fatalf("stats: %v", err)
		}
		return st
	}

	split := 2 * len(reqs) / 3
	fmt.Printf("\nphase 1: %d reservations through the gateway\n", split)
	for _, r := range reqs[:split] {
		submit(r)
	}
	for _, sh := range stats().Shards {
		fmt.Printf("  shard %s: %d routed (region of its neighborhoods)\n", sh.ID, sh.Routed)
	}

	res := advance(reqs[split-1].Start)
	fmt.Printf("\nbroadcast advance: epoch %d, %d admitted across %d shards, merged cost %v\n",
		res.Epoch, res.Admitted, len(res.Shards), res.Cost)

	// The standby's own readiness can lag one poll period behind the
	// primary's journal, so compare applied sequences across the pair
	// before pulling the plug — exactly what an operator's runbook (or
	// the gateway's non-forced promote) would check.
	fmt.Println("\nwaiting for s1's standby to catch up, then killing s1's primary...")
	var pst replica.Status
	if err := retryhttp.GetJSON(ctx, retry, s1URL+"/v1/replication/status", &pst); err != nil {
		log.Fatal(err)
	}
	for {
		var st replica.Status
		if err := retryhttp.GetJSON(ctx, retry, s1standbyURL+"/v1/replication/status", &st); err == nil &&
			st.Synced && st.AppliedSeq >= pst.AppliedSeq {
			fmt.Printf("  standby caught up: applied seq %d of %d\n", st.AppliedSeq, pst.AppliedSeq)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop1()
	_ = s1.Close()

	fmt.Printf("phase 2: %d reservations through the gateway\n", len(reqs)-split)
	for _, r := range reqs[split:] {
		submit(r)
	}
	end := reqs[len(reqs)-1].Start.Add(vsp.Hour)
	res = advance(end)
	fmt.Printf("final advance: epoch %d, %d admitted, merged cost %v\n",
		res.Epoch, res.Admitted, res.Cost)

	st := stats()
	fmt.Printf("\nfailovers: %d\n", st.Failovers)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %s now serves from %s (role %s)\n", sh.ID, sh.Primary, sh.Role)
	}
	if st.Failovers != 1 {
		fmt.Println("EXPECTED EXACTLY ONE FAILOVER — this is a bug")
		os.Exit(1)
	}

	var plan gateway.PlanResponse
	if err := retryhttp.GetJSON(ctx, retry, gwURL+"/v1/plan", &plan); err != nil {
		log.Fatal(err)
	}
	if plan.Pending != 0 {
		fmt.Printf("PLAN STILL PENDING %d — this is a bug\n", plan.Pending)
		os.Exit(1)
	}
	if err := plan.Schedule.Validate(topo, catalog, workload.Set(reqs)); err != nil {
		fmt.Printf("MERGED PLAN INVALID: %v\n", err)
		os.Exit(1)
	}
	blob, _ := json.Marshal(plan.Schedule)
	fmt.Printf("\nmerged plan: %d reservations served, cost %v, %d bytes of schedule JSON\n",
		len(reqs), plan.Cost, len(blob))
	fmt.Println("merged schedule validates against the full workload — nothing lost ✓")
}
