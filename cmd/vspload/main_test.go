package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// Smoke: generate a small pattern trace to disk, replay it against an
// in-process vspserve, and check the JSON result lands. This is the
// CI short-mode equivalent of `make load-demo`.
func TestSmokeAgainstServer(t *testing.T) {
	rig, err := experiment.Build(experiment.Params{
		Storages: 3, UsersPerStorage: 2, Titles: 8,
		CapacityGB: 4, RequestsPerUser: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithOptions(rig.Model, server.Options{
		Horizon: horizon.Config{EpochRequests: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	outPath := filepath.Join(dir, "load.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tw := workload.NewJSONLTraceWriter(f)
	p := workload.Pattern{
		Base:     workload.Config{Seed: 3},
		Requests: 60,
		Span:     4 * simtime.Hour,
	}
	if err := p.Stream(rig.Topo, rig.Catalog, tw.Write); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	err = run(options{
		target:          ts.URL,
		tracePath:       tracePath,
		concurrency:     4,
		advanceLagHours: 1,
		outPath:         outPath,
		quiet:           true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var res struct {
		Submitted int `json:"submitted"`
		Accepted  int `json:"accepted"`
		Submit    struct {
			N int `json:"n"`
		} `json:"submit_latency"`
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 60 || res.Accepted == 0 || res.Submit.N != 60 {
		t.Fatalf("result file: %+v", res)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Fatal("missing -target/-trace accepted")
	}
	if err := run(options{target: "http://x", tracePath: "nope.csv"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(p, []byte("user,video,start_seconds\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{target: "http://x", tracePath: p, format: "parquet"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
