package topology

import (
	"bytes"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/units"
)

func TestSpecRoundTrip(t *testing.T) {
	orig := Metro(GenConfig{Storages: 9, UsersPerStorage: 4, Capacity: 8 * units.GB}, 3)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() || got.NumUsers() != orig.NumUsers() {
		t.Fatalf("round trip size mismatch: %d/%d nodes, %d/%d edges, %d/%d users",
			got.NumNodes(), orig.NumNodes(), got.NumEdges(), orig.NumEdges(), got.NumUsers(), orig.NumUsers())
	}
	for i := range orig.Nodes() {
		o, g := orig.Node(NodeID(i)), got.Node(NodeID(i))
		if o.Name != g.Name || o.Kind != g.Kind || o.Capacity != g.Capacity {
			t.Errorf("node %d mismatch: %+v vs %+v", i, o, g)
		}
	}
	for i := range orig.Edges() {
		if orig.Edge(i) != got.Edge(i) {
			t.Errorf("edge %d mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error for invalid JSON")
	}
	spec := `{"warehouse":"VW","storages":[{"name":"IS1","capacity_bytes":1,"users":1}],"links":[["VW","NOPE"]]}`
	if _, err := Decode(strings.NewReader(spec)); err == nil {
		t.Error("expected error for unknown link endpoint")
	}
	spec = `{"warehouse":"VW","storages":[{"name":"IS1","capacity_bytes":1,"users":1}],"links":[["NOPE","IS1"]]}`
	if _, err := Decode(strings.NewReader(spec)); err == nil {
		t.Error("expected error for unknown link endpoint (first)")
	}
}

func TestDecodeDefaultsWarehouseName(t *testing.T) {
	spec := `{"storages":[{"name":"IS1","capacity_bytes":5,"users":2}],"links":[["VW","IS1"]]}`
	topo, err := Decode(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if topo.Node(topo.Warehouse()).Name != "VW" {
		t.Error("default warehouse name not applied")
	}
}

func TestDOT(t *testing.T) {
	topo := smallTopo(t)
	dot := topo.DOT()
	for _, want := range []string{"graph topology {", `"VW" [shape=box`, `"IS1" --`, `-- "IS2";`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestMarshalJSON(t *testing.T) {
	topo := smallTopo(t)
	b, err := topo.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	if !strings.Contains(string(b), `"warehouse":"VW"`) {
		t.Errorf("MarshalJSON output unexpected: %s", b)
	}
}

// FuzzDecode hammers the topology spec parser: it must never panic, and
// any topology it accepts must satisfy the structural invariants.
func FuzzDecode(f *testing.F) {
	good, _ := Metro(GenConfig{Storages: 3, UsersPerStorage: 1, Capacity: units.GB}, 1).MarshalJSON()
	f.Add(string(good))
	f.Add(`{"warehouse":"VW","storages":[],"links":[]}`)
	f.Add(`{"storages":[{"name":"A","capacity_bytes":-5,"users":1}],"links":[["VW","A"]]}`)
	f.Add(`{"warehouse":"X","storages":[{"name":"X"}],"links":[]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		topo, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		if !topo.Connected() {
			t.Fatal("accepted disconnected topology")
		}
		if topo.Node(topo.Warehouse()).Kind != KindWarehouse {
			t.Fatal("warehouse invariant broken")
		}
		for _, n := range topo.Nodes() {
			if n.Kind == KindStorage && n.Capacity < 0 {
				t.Fatal("accepted negative capacity")
			}
		}
	})
}
