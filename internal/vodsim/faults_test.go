package vodsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// TestEmptyScenarioIsByteIdentical is the repair-invariant property test:
// executing any schedule under an empty fault scenario must reproduce the
// fault-free simulator output exactly — same Ψ(S), zero violations, and a
// byte-identical report.
func TestEmptyScenarioIsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rig, err := testutil.NewPaperRig(9, 8, 40, 5*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 8 * simtime.Hour, Seed: seed + 50})
		if err != nil {
			t.Fatal(err)
		}
		out, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
		if err != nil {
			t.Fatal(err)
		}
		plain := Execute(rig.Model.Book(), rig.Catalog, out.Schedule)
		under := ExecuteScenario(rig.Model.Book(), rig.Catalog, out.Schedule, &faults.Scenario{})
		a, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(under)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: empty scenario diverged from fault-free run:\n%s\n%s", seed, a, b)
		}
		if !plain.OK() {
			t.Fatalf("seed %d: fault-free run has violations: %v", seed, plain.Violations)
		}
	}
}

// TestNodeOutageKillsDownstream: taking IS2 down across the 90-minute
// service start misses both IS2 services and the IS2 copy never loads.
func TestNodeOutageKillsDownstream(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.NodeOutage, Node: f.IS2,
		From: simtime.Time(85 * simtime.Minute), Until: simtime.Time(100 * simtime.Minute),
	}}}
	rep := ExecuteScenario(f.Model.Book(), f.Model.Catalog(), out.Schedule, sc)
	if !rep.OK() {
		t.Fatalf("fault injection produced schedule violations: %v", rep.Violations)
	}
	// Delivery IS1->IS2 at 90m starts inside the outage -> missed; the
	// IS2 copy it fed never loads; the 180m local hit reads a dead copy
	// -> missed. Only the t=0 VW->IS1 stream survives.
	if rep.Missed != 2 || rep.Severed != 0 {
		t.Errorf("missed=%d severed=%d, want 2/0\nnotes: %v", rep.Missed, rep.Severed, rep.FaultNotes)
	}
	if rep.Streams != 1 {
		t.Errorf("streams = %d, want 1", rep.Streams)
	}
	if rep.DeadResidencies != 1 {
		t.Errorf("dead residencies = %d, want 1", rep.DeadResidencies)
	}
	if rep.CacheLoads != 1 {
		t.Errorf("cache loads = %d, want 1 (dead copy never loads)", rep.CacheLoads)
	}
	free := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if rep.TotalCost() >= free.TotalCost() {
		t.Errorf("degraded run cost %v not below fault-free %v", rep.TotalCost(), free.TotalCost())
	}
}

// TestOutageSeversInFlightStream: an IS1 outage mid-playback severs the
// stream feeding it and cascades to every downstream service.
func TestOutageSeversInFlightStream(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.NodeOutage, Node: f.IS1,
		From: simtime.Time(30 * simtime.Minute), Until: simtime.Time(60 * simtime.Minute),
	}}}
	rep := ExecuteScenario(f.Model.Book(), f.Model.Catalog(), out.Schedule, sc)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// The t=0 VW->IS1 stream is in flight at onset -> severed; the IS1
	// copy dies at onset; the 90m and 180m services cascade to missed.
	if rep.Severed != 1 || rep.Missed != 2 {
		t.Errorf("severed=%d missed=%d, want 1/2\nnotes: %v", rep.Severed, rep.Missed, rep.FaultNotes)
	}
	if rep.DeadResidencies != 2 {
		t.Errorf("dead residencies = %d, want 2", rep.DeadResidencies)
	}
	// Severed stream carried only a third of the file: network bytes must
	// reflect the cut, not the full playback.
	v := f.Model.Catalog().Video(0)
	wantBytes := float64(v.Rate) * (30 * 60.0)
	var got float64
	for _, lu := range rep.Links {
		got += float64(lu.Bytes)
	}
	if got < wantBytes*0.99 || got > wantBytes*1.01 {
		t.Errorf("link bytes %.0f, want ~%.0f (severed at 30m)", got, wantBytes)
	}
}

// TestLinkDownSeversStream: a mid-stream link failure cuts the one stream
// routed over it at onset.
func TestLinkDownSeversStream(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	edge, ok := f.Topo.EdgeBetween(f.VW, f.IS1)
	if !ok {
		t.Fatal("no VW-IS1 edge")
	}
	sc := &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.LinkDown, Edge: edge,
		From: simtime.Time(85 * simtime.Minute), Until: simtime.Time(100 * simtime.Minute),
	}}}
	rep := ExecuteScenario(f.Model.Book(), f.Model.Catalog(), out.Schedule, sc)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Severed != 1 {
		t.Errorf("severed = %d, want 1 (VW->IS1 cut at 85m)\nnotes: %v", rep.Severed, rep.FaultNotes)
	}
	// The copy at IS1 was being written from the severed stream: it dies
	// at the cut, so the 90m extension read and everything after miss.
	if rep.Missed != 2 {
		t.Errorf("missed = %d, want 2\nnotes: %v", rep.Missed, rep.FaultNotes)
	}
}
