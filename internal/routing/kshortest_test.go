package routing

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// diamond: VW has two disjoint 2-hop paths to IS3 plus a 3-hop detour.
func diamondBook(t *testing.T) (*pricing.Book, *topology.Topology) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", units.GB)
	is2 := b.Storage("IS2", units.GB)
	is3 := b.Storage("IS3", units.GB)
	b.Connect(vw, is1)
	b.Connect(vw, is2)
	b.Connect(is1, is3)
	b.Connect(is2, is3)
	b.Connect(is1, is2)
	b.AttachUsers(is3, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, 0, pricing.PerGB(100))
	// Make VW-IS2 pricier so path ranks are distinct.
	e, _ := topo.EdgeBetween(vw, is2)
	book.SetNRate(e, pricing.PerGB(150))
	return book, topo
}

func TestKShortestOrdering(t *testing.T) {
	book, topo := diamondBook(t)
	vw := topo.Warehouse()
	is3, _ := topo.Lookup("IS3")
	routes := KShortest(book, vw, is3, 4)
	if len(routes) < 3 {
		t.Fatalf("routes = %d, want >= 3", len(routes))
	}
	// First route must be the cheapest (200/GB via IS1).
	if math.Abs(float64(routes[0].Rate-pricing.PerGB(200))) > 1e-15 {
		t.Errorf("first rate = %v, want 200/GB", routes[0].Rate)
	}
	// Ascending rates, loopless, distinct, correct endpoints.
	seen := map[string]bool{}
	for i, rr := range routes {
		if i > 0 && rr.Rate < routes[i-1].Rate {
			t.Errorf("routes not sorted at %d", i)
		}
		if rr.Route.Src() != vw || rr.Route.Dst() != is3 {
			t.Errorf("route %d endpoints wrong: %v", i, rr.Route)
		}
		if hasLoop(rr.Route) {
			t.Errorf("route %d has a loop: %v", i, rr.Route)
		}
		key := ""
		for _, n := range rr.Route {
			key += string(rune('a' + int(n)))
		}
		if seen[key] {
			t.Errorf("duplicate route %v", rr.Route)
		}
		seen[key] = true
		// Rate matches the priced route.
		if math.Abs(float64(rr.Rate-book.RouteRate(rr.Route))) > 1e-15 {
			t.Errorf("route %d rate mismatch", i)
		}
	}
}

func TestKShortestEdgeCases(t *testing.T) {
	book, topo := diamondBook(t)
	vw := topo.Warehouse()
	is3, _ := topo.Lookup("IS3")
	if KShortest(book, vw, is3, 0) != nil {
		t.Error("k=0 must return nil")
	}
	one := KShortest(book, vw, is3, 1)
	if len(one) != 1 {
		t.Fatalf("k=1 returned %d", len(one))
	}
	self := KShortest(book, vw, vw, 3)
	if len(self) != 1 || self[0].Route.Hops() != 0 {
		t.Errorf("self routes = %v", self)
	}
	// Asking for more routes than exist returns all simple paths.
	many := KShortest(book, vw, is3, 100)
	if len(many) < 3 || len(many) > 10 {
		t.Errorf("exhaustive route count = %d", len(many))
	}
}

// TestKShortestMatchesBruteForce enumerates all simple paths on random
// small graphs and checks the top-k agreement on rates.
func TestKShortestMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		topo := topology.Random(topology.GenConfig{Storages: 6, UsersPerStorage: 1, Capacity: units.GB}, 4, seed)
		book := pricing.Uniform(topo, 0, 0)
		rng := rand.New(rand.NewSource(seed + 77))
		for ei := 0; ei < topo.NumEdges(); ei++ {
			book.SetNRate(ei, pricing.NRate(1+rng.Float64()*100))
		}
		src := topo.Warehouse()
		dst := topo.Storages()[rng.Intn(topo.NumStorages())]

		// Brute force: all simple paths with DFS.
		var all []float64
		visited := make(map[topology.NodeID]bool)
		var dfs func(n topology.NodeID, rate pricing.NRate)
		dfs = func(n topology.NodeID, rate pricing.NRate) {
			if n == dst {
				all = append(all, float64(rate))
				return
			}
			visited[n] = true
			topo.Neighbors(n, func(ei int, to topology.NodeID) {
				if !visited[to] {
					dfs(to, rate+book.NRate(ei))
				}
			})
			visited[n] = false
		}
		dfs(src, 0)
		if len(all) == 0 {
			continue
		}
		sortFloats(all)

		k := 4
		got := KShortest(book, src, dst, k)
		for i := 0; i < len(got) && i < len(all) && i < k; i++ {
			if math.Abs(float64(got[i].Rate)-all[i]) > 1e-9 {
				t.Fatalf("seed %d: k-shortest[%d] = %g, brute force %g", seed, i, float64(got[i].Rate), all[i])
			}
		}
		if len(got) < k && len(all) >= k {
			t.Fatalf("seed %d: found %d routes, %d exist", seed, len(got), len(all))
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
