package workload

// Pattern generation: servegen-style structured workloads layered on top
// of Config. Where Generate draws one flat batch (every user, one Zipf
// draw, one arrival process), a Pattern composes
//
//   - a temporal rate profile — a diurnal cycle, premiere flash crowds
//     and per-window rate multipliers — sampled on a fixed slot grid,
//   - popularity structure that moves — Zipf rank drift (adjacent-rank
//     swaps) and catalog churn (titles re-entering the ranking in the
//     premiere zone) applied on interval boundaries,
//   - regional neighborhood cohorts — contiguous metro regions with
//     their own taste permutations and, optionally, time-zone-staggered
//     diurnal phases — on top of the per-neighborhood Locality mixing
//     Config already provides.
//
// The emitted trace is chronological by construction and is produced
// one request at a time through Stream, so a multi-million-request
// trace never materializes in memory: peak state is the slot weight
// grid plus one slot's worth of events.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Diurnal shapes the daily demand cycle as a raised cosine: the rate
// factor is 1+Strength at the peak instant and 1-Strength at the
// trough, with mean 1 over a full period.
type Diurnal struct {
	// Strength in [0, 1]: 0 (default) is a flat profile, 1 swings the
	// rate between 2x and 0.
	Strength float64
	// Period of the cycle (default 24h).
	Period simtime.Duration
	// Peak is the offset of the daily maximum within the period
	// (default 20h — the 8pm prime-time surge).
	Peak simtime.Duration
}

// Flash is one premiere flash crowd: a triangular rate bump of height
// Boost centered on At, optionally funneling the extra demand onto the
// premiered title.
type Flash struct {
	// At is the premiere instant (the bump's center).
	At simtime.Time
	// Duration is the half-width of the bump (default 1h): the boost
	// ramps linearly from 0 at At-Duration to Boost at At and back.
	Duration simtime.Duration
	// Boost is the added rate multiple at the peak (2 triples the
	// baseline rate at the premiere instant). Must be >= 0.
	Boost float64
	// Video is the premiered title. A crowd-attributed request targets
	// it with probability Share; with Share 0 (the default) the crowd
	// draws from the regular popularity distribution and Video is
	// ignored, so the zero value is safe.
	Video media.VideoID
	Share float64
}

// Window scales the rate by Factor over [From, To) — maintenance
// windows (Factor < 1), promotional pushes (Factor > 1).
type Window struct {
	From, To simtime.Time
	Factor   float64
}

// Drift perturbs the popularity ranking every Interval by Swaps
// adjacent-rank transpositions, so ranks wander instead of being pinned
// for the whole trace.
type Drift struct {
	Interval simtime.Duration // 0 disables drift
	Swaps    int              // default max(1, titles/20)
}

// Churn re-rolls part of the catalog every Interval: Fraction of the
// titles are plucked from their ranks and re-inserted in the premiere
// zone (the top tenth of the ranking), modelling new releases entering
// hot while incumbents slide toward the tail.
type Churn struct {
	Interval simtime.Duration // 0 disables churn
	Fraction float64          // fraction of the catalog moved per interval, in [0, 1]
}

// Pattern parameterizes structured trace generation. The zero value of
// every field beyond Requests reproduces a flat uniform-rate trace with
// Base's popularity model.
type Pattern struct {
	// Base supplies the popularity skew (Alpha), neighborhood Locality
	// mixing and the RNG Seed. Its Window, Arrival and RequestsPerUser
	// fields are ignored — the Pattern owns time.
	Base Config
	// Requests is the total number of reservations to emit (required).
	Requests int
	// Span is the trace duration (default 24h).
	Span simtime.Duration
	// Slot is the rate-profile resolution (default 5m). Weights are
	// evaluated at slot midpoints; request start times spread uniformly
	// within their slot.
	Slot simtime.Duration

	Diurnal Diurnal
	Flash   []Flash
	Windows []Window
	Drift   Drift
	Churn   Churn

	// Regions > 0 partitions the neighborhoods into that many contiguous
	// metro regions (the same partition the gateway's locality placement
	// uses) and apportions demand region by region.
	Regions int
	// CohortShare in [0, 1] is the probability that a request's
	// popularity rank is remapped through its region's cohort
	// permutation: regions agree demand is concentrated but disagree on
	// which titles are hot. Requires Regions > 0.
	CohortShare float64
	// RegionStagger shifts region r's diurnal phase by r*RegionStagger,
	// modelling time zones across the metro ring.
	RegionStagger simtime.Duration
}

func (p Pattern) withDefaults(titles int) Pattern {
	if p.Span == 0 {
		p.Span = simtime.Day
	}
	if p.Slot == 0 {
		p.Slot = 5 * simtime.Minute
	}
	if p.Slot > p.Span {
		p.Slot = p.Span
	}
	if p.Diurnal.Period == 0 {
		p.Diurnal.Period = simtime.Day
	}
	if p.Diurnal.Peak == 0 {
		p.Diurnal.Peak = 20 * simtime.Hour
	}
	for i := range p.Flash {
		if p.Flash[i].Duration == 0 {
			p.Flash[i].Duration = simtime.Hour
		}
	}
	if p.Drift.Interval > 0 && p.Drift.Swaps == 0 {
		p.Drift.Swaps = titles / 20
		if p.Drift.Swaps < 1 {
			p.Drift.Swaps = 1
		}
	}
	return p
}

func (p Pattern) validate(cat *media.Catalog) error {
	if cat.Len() == 0 {
		return fmt.Errorf("workload: empty catalog")
	}
	if p.Requests <= 0 {
		return fmt.Errorf("workload: pattern needs Requests > 0, got %d", p.Requests)
	}
	if p.Span <= 0 || p.Slot <= 0 {
		return fmt.Errorf("workload: pattern span %v and slot %v must be positive", p.Span, p.Slot)
	}
	if p.Diurnal.Strength < 0 || p.Diurnal.Strength > 1 {
		return fmt.Errorf("workload: diurnal strength must be in [0,1], got %g", p.Diurnal.Strength)
	}
	if p.Diurnal.Period <= 0 {
		return fmt.Errorf("workload: diurnal period must be positive, got %v", p.Diurnal.Period)
	}
	for i, f := range p.Flash {
		if f.Boost < 0 {
			return fmt.Errorf("workload: flash %d has negative boost %g", i, f.Boost)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("workload: flash %d has non-positive duration %v", i, f.Duration)
		}
		if f.Share < 0 || f.Share > 1 {
			return fmt.Errorf("workload: flash %d share must be in [0,1], got %g", i, f.Share)
		}
		if f.Share > 0 && (int(f.Video) < 0 || int(f.Video) >= cat.Len()) {
			return fmt.Errorf("workload: flash %d premieres unknown video %d", i, f.Video)
		}
	}
	for i, w := range p.Windows {
		if w.Factor < 0 {
			return fmt.Errorf("workload: window %d has negative factor %g", i, w.Factor)
		}
		if w.To <= w.From {
			return fmt.Errorf("workload: window %d is empty: [%v, %v)", i, w.From, w.To)
		}
	}
	if p.Churn.Fraction < 0 || p.Churn.Fraction > 1 {
		return fmt.Errorf("workload: churn fraction must be in [0,1], got %g", p.Churn.Fraction)
	}
	if p.CohortShare < 0 || p.CohortShare > 1 {
		return fmt.Errorf("workload: cohort share must be in [0,1], got %g", p.CohortShare)
	}
	if p.CohortShare > 0 && p.Regions <= 0 {
		return fmt.Errorf("workload: cohort share %g needs Regions > 0", p.CohortShare)
	}
	if p.Base.Locality < 0 || p.Base.Locality > 1 {
		return fmt.Errorf("workload: locality must be in [0,1], got %g", p.Base.Locality)
	}
	return nil
}

// diurnalFactor evaluates the raised-cosine cycle at t with the given
// phase shift.
func (p Pattern) diurnalFactor(t simtime.Time, shift simtime.Duration) float64 {
	if p.Diurnal.Strength == 0 {
		return 1
	}
	theta := 2 * math.Pi * float64(int64(t)-int64(p.Diurnal.Peak)-int64(shift)) / float64(p.Diurnal.Period)
	return 1 + p.Diurnal.Strength*math.Cos(theta)
}

// windowFactor is the product of every window multiplier covering t.
func (p Pattern) windowFactor(t simtime.Time) float64 {
	f := 1.0
	for _, w := range p.Windows {
		if t >= w.From && t < w.To {
			f *= w.Factor
		}
	}
	return f
}

// flashBoost returns each flash crowd's added rate multiple at t
// (triangular bump), aligned with p.Flash.
func (p Pattern) flashBoost(t simtime.Time) []float64 {
	if len(p.Flash) == 0 {
		return nil
	}
	out := make([]float64, len(p.Flash))
	for i, f := range p.Flash {
		d := int64(t) - int64(f.At)
		if d < 0 {
			d = -d
		}
		if d < int64(f.Duration) {
			out[i] = f.Boost * (1 - float64(d)/float64(f.Duration))
		}
	}
	return out
}

// userRegions mirrors the gateway's locality partition: neighborhoods
// ordered by node ID are split into n contiguous near-equal regions and
// every user inherits its neighborhood's region. Users homed off the
// storage set fall into region 0.
func userRegions(topo *topology.Topology, n int) []int {
	storages := topo.Storages()
	region := make(map[topology.NodeID]int, len(storages))
	for i, s := range storages {
		region[s] = i * n / len(storages)
	}
	out := make([]int, topo.NumUsers())
	for i := range out {
		out[i] = region[topo.User(topology.UserID(i)).Local]
	}
	return out
}

// patternState is the mutable popularity state the slot loop threads:
// the rank-to-title assignment under drift and churn, and the next
// pending mutation instants.
type patternState struct {
	rankToVideo []media.VideoID
	nextDrift   simtime.Time
	nextChurn   simtime.Time
}

// advanceTo applies every drift/churn interval boundary at or before t,
// in chronological order (drift first on ties), keeping the mutation
// sequence a pure function of the seed.
func (p Pattern) advanceTo(st *patternState, t simtime.Time, rng *rand.Rand) {
	n := len(st.rankToVideo)
	for {
		driftDue := p.Drift.Interval > 0 && st.nextDrift <= t
		churnDue := p.Churn.Interval > 0 && st.nextChurn <= t
		switch {
		case driftDue && (!churnDue || st.nextDrift <= st.nextChurn):
			for i := 0; i < p.Drift.Swaps && n > 1; i++ {
				j := rng.Intn(n - 1)
				st.rankToVideo[j], st.rankToVideo[j+1] = st.rankToVideo[j+1], st.rankToVideo[j]
			}
			st.nextDrift = st.nextDrift.Add(p.Drift.Interval)
		case churnDue:
			moves := int(p.Churn.Fraction * float64(n))
			hot := n / 10
			if hot < 1 {
				hot = 1
			}
			for i := 0; i < moves; i++ {
				from := rng.Intn(n)
				to := rng.Intn(hot)
				v := st.rankToVideo[from]
				st.rankToVideo = append(st.rankToVideo[:from], st.rankToVideo[from+1:]...)
				st.rankToVideo = append(st.rankToVideo[:to], append([]media.VideoID{v}, st.rankToVideo[to:]...)...)
			}
			st.nextChurn = st.nextChurn.Add(p.Churn.Interval)
		default:
			return
		}
	}
}

// Stream generates the pattern's trace, invoking emit once per request
// in chronological order (start time, then user, then video). It never
// holds more than one slot's worth of requests, so emit may stream
// millions of reservations to disk or over HTTP in bounded memory.
// Generation is deterministic per (topology, catalog, pattern).
func (p Pattern) Stream(topo *topology.Topology, cat *media.Catalog, emit func(Request) error) error {
	p = p.withDefaults(cat.Len())
	if err := p.validate(cat); err != nil {
		return err
	}
	bcfg := p.Base.withDefaults()
	zipf, err := NewZipf(cat.Len(), bcfg.Alpha)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(bcfg.Seed))
	locPerms := localPermutations(topo, cat.Len(), bcfg, rng)

	// Region partition and per-region user pools. Without Regions the
	// whole population is one pool.
	nRegions := p.Regions
	if nRegions <= 0 {
		nRegions = 1
	}
	regionUsers := make([][]topology.UserID, nRegions)
	if p.Regions > 0 {
		regions := userRegions(topo, nRegions)
		for i, r := range regions {
			regionUsers[r] = append(regionUsers[r], topology.UserID(i))
		}
	} else {
		all := make([]topology.UserID, topo.NumUsers())
		for i := range all {
			all[i] = topology.UserID(i)
		}
		regionUsers[0] = all
	}
	var cohortPerms [][]int
	if p.CohortShare > 0 {
		cohortPerms = make([][]int, nRegions)
		for r := range cohortPerms {
			cohortPerms[r] = rng.Perm(cat.Len())
		}
	}

	// First pass: the (slot, region) weight grid. Rates are independent
	// of the popularity state, so this needs no RNG and stays O(slots).
	nSlots := int((p.Span + p.Slot - 1) / p.Slot)
	type cell struct {
		base    float64   // diurnal x windows share of the cell's weight
		flashes []float64 // per-flash added shares, aligned with p.Flash
		total   float64
	}
	grid := make([]cell, nSlots*nRegions)
	totalWeight := 0.0
	slotBounds := func(s int) (lo, hi simtime.Time) {
		lo = simtime.Time(int64(s) * int64(p.Slot))
		hi = lo.Add(p.Slot)
		if hi > simtime.Time(p.Span) {
			hi = simtime.Time(p.Span)
		}
		return lo, hi
	}
	for s := 0; s < nSlots; s++ {
		lo, hi := slotBounds(s)
		mid := simtime.Time((int64(lo) + int64(hi)) / 2)
		win := p.windowFactor(mid)
		fl := p.flashBoost(mid)
		for r := 0; r < nRegions; r++ {
			if len(regionUsers[r]) == 0 {
				continue // an empty region can serve no demand
			}
			c := cell{base: p.diurnalFactor(mid, simtime.Duration(r)*p.RegionStagger)}
			c.total = c.base
			for _, b := range fl {
				c.flashes = append(c.flashes, b)
				c.total += b
			}
			c.total *= win
			c.base *= win
			for i := range c.flashes {
				c.flashes[i] *= win
			}
			if c.total < 0 {
				c.total = 0
			}
			grid[s*nRegions+r] = c
			totalWeight += c.total
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("workload: pattern rate profile is zero everywhere (no users, or windows cancel all demand)")
	}

	// Second pass: apportion Requests over the grid by cumulative
	// rounding (exact total, no per-cell randomness), then draw each
	// slot's events and emit them in order.
	st := &patternState{rankToVideo: make([]media.VideoID, cat.Len())}
	for i := range st.rankToVideo {
		st.rankToVideo[i] = media.VideoID(i)
	}
	if p.Drift.Interval > 0 {
		st.nextDrift = simtime.Time(int64(p.Drift.Interval))
	}
	if p.Churn.Interval > 0 {
		st.nextChurn = simtime.Time(int64(p.Churn.Interval))
	}
	drawVideo := func(c cell, region int, user topology.UserID) media.VideoID {
		// Attribute the request to the baseline or to one flash crowd,
		// proportionally to their share of the cell's rate.
		if len(c.flashes) > 0 {
			u := rng.Float64() * c.total
			if u >= c.base {
				u -= c.base
				for i, b := range c.flashes {
					if u < b {
						f := p.Flash[i]
						if f.Share > 0 && rng.Float64() < f.Share {
							return f.Video
						}
						break
					}
					u -= b
				}
			}
		}
		rank := zipf.Draw(rng)
		if cohortPerms != nil && rng.Float64() < p.CohortShare {
			rank = cohortPerms[region][rank]
		}
		if bcfg.Locality > 0 && rng.Float64() < bcfg.Locality {
			rank = remapRank(locPerms, topo.User(user).Local, rank)
		}
		return st.rankToVideo[rank]
	}

	lastCell := -1 // last cell with demand absorbs float rounding
	for i, c := range grid {
		if c.total > 0 {
			lastCell = i
		}
	}
	acc, assigned := 0.0, 0
	var slotEvents []Request
	for s := 0; s < nSlots; s++ {
		lo, hi := slotBounds(s)
		p.advanceTo(st, lo, rng)
		slotEvents = slotEvents[:0]
		for r := 0; r < nRegions; r++ {
			c := grid[s*nRegions+r]
			acc += c.total
			target := int(math.Round(float64(p.Requests) * acc / totalWeight))
			if s*nRegions+r >= lastCell {
				target = p.Requests
			}
			count := target - assigned
			assigned = target
			span := int64(hi - lo)
			if span <= 0 {
				span = 1
			}
			for k := 0; k < count; k++ {
				start := lo.Add(simtime.Duration(rng.Int63n(span)))
				pool := regionUsers[r]
				user := pool[rng.Intn(len(pool))]
				slotEvents = append(slotEvents, Request{
					User:  user,
					Video: drawVideo(c, r, user),
					Start: start,
				})
			}
		}
		sort.Slice(slotEvents, func(i, j int) bool {
			if slotEvents[i].Start != slotEvents[j].Start {
				return slotEvents[i].Start < slotEvents[j].Start
			}
			if slotEvents[i].User != slotEvents[j].User {
				return slotEvents[i].User < slotEvents[j].User
			}
			return slotEvents[i].Video < slotEvents[j].Video
		})
		for _, r := range slotEvents {
			if err := emit(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// GeneratePattern collects a Pattern's stream into an in-memory Set —
// the convenience path for tests and small traces. Large traces should
// use Stream (or NewPatternReader) with a TraceWriter instead.
func GeneratePattern(topo *topology.Topology, cat *media.Catalog, p Pattern) (Set, error) {
	set := make(Set, 0, p.Requests)
	if err := p.Stream(topo, cat, func(r Request) error {
		set = append(set, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return set, nil
}
