package placement

import (
	"testing"

	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/workload"
)

// rig: expensive network, cheap disk, highly skewed demand — the regime
// where standing copies of the hottest titles pay for themselves.
func rig(t *testing.T) *testutil.PaperRig {
	t.Helper()
	r, err := testutil.NewPaperRig(9, 10, 40, 10*units.GB, testutil.PerGBHour(1), pricing.PerGB(900), 13)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuildPlan(t *testing.T) {
	r := rig(t)
	plan, err := Build(r.Model, Config{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCopies() == 0 {
		t.Fatal("planner placed nothing despite favorable economics")
	}
	if plan.ExpectedGain <= 0 {
		t.Error("expected gain must be positive")
	}
	// Every placement is a well-formed pre-placed residency with positive
	// expected gain.
	perNode := map[topology.NodeID]units.Bytes{}
	for _, pl := range plan.Placements {
		if pl.Copy.FedBy != schedule.PrePlacedFeed {
			t.Error("placement not marked pre-placed")
		}
		if pl.Copy.Src != r.Topo.Warehouse() {
			t.Error("placement not sourced at the warehouse")
		}
		if pl.Gain() <= 0 {
			t.Errorf("non-positive gain placement: %+v", pl)
		}
		perNode[pl.Copy.Loc] += r.Catalog.Video(pl.Copy.Video).Size
	}
	// Capacity fraction respected (default 0.5).
	for n, used := range perNode {
		cap := r.Topo.Node(n).Capacity
		if float64(used) > float64(cap)*0.5+1 {
			t.Errorf("node %d: placed %v over budget %v", n, used, cap/2)
		}
	}
	// The hottest title is placed somewhere.
	placedHot := false
	for _, pl := range plan.Placements {
		if pl.Copy.Video == 0 {
			placedHot = true
		}
	}
	if !placedHot {
		t.Error("rank-0 title not placed anywhere")
	}
}

func TestBuildValidation(t *testing.T) {
	r := rig(t)
	if _, err := Build(r.Model, Config{CapacityFraction: 1.5}); err == nil {
		t.Error("expected error for capacity fraction > 1")
	}
	if _, err := Build(r.Model, Config{Alpha: -1}); err == nil {
		t.Error("expected error for invalid alpha")
	}
}

func TestMaxPerNode(t *testing.T) {
	r := rig(t)
	plan, err := Build(r.Model, Config{Alpha: 0.1, MaxPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, pl := range plan.Placements {
		perNode[int(pl.Copy.Loc)]++
	}
	for n, c := range perNode {
		if c > 1 {
			t.Errorf("node %d holds %d copies, cap 1", n, c)
		}
	}
}

// TestSeededSchedulingEndToEnd is the integration check: schedule a skewed
// batch with and without the plan's seeds; the seeded schedule must
// validate, stay overflow-free, execute cleanly on the simulator at the
// analytic cost, and — in this favorable regime — beat the unseeded run.
func TestSeededSchedulingEndToEnd(t *testing.T) {
	r := rig(t)
	plan, err := Build(r.Model, Config{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCopies() == 0 {
		t.Skip("no placements on this rig")
	}
	reqs, err := workload.Generate(r.Topo, r.Catalog, workload.Config{Alpha: 0.1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := scheduler.Run(r.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := scheduler.Run(r.Model, reqs, scheduler.Config{Seeds: plan.Seeds()})
	if err != nil {
		t.Fatalf("seeded run: %v", err)
	}
	// Structural checks (Run validates; be explicit anyway).
	if err := seeded.Schedule.Validate(r.Topo, r.Catalog, reqs); err != nil {
		t.Fatalf("seeded schedule invalid: %v", err)
	}
	ledger := occupancy.FromSchedule(r.Topo, r.Catalog, seeded.Schedule)
	if ovs := ledger.AllOverflows(); len(ovs) != 0 {
		t.Fatalf("seeded schedule overflows: %v", ovs)
	}
	// Simulator agreement, pre-placement flows included.
	rep := vodsim.Execute(r.Book, r.Catalog, seeded.Schedule)
	if !rep.OK() {
		t.Fatalf("seeded simulation violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if !rep.TotalCost().ApproxEqual(seeded.FinalCost-prePlacementTotal(r, seeded.Schedule), 1e-3) {
		// The simulator accounts pre-load transfers as link bytes, so its
		// total INCLUDES them; compare directly instead.
		if !rep.TotalCost().ApproxEqual(seeded.FinalCost, 1e-3) {
			t.Fatalf("simulated %v != analytic %v", rep.TotalCost(), seeded.FinalCost)
		}
	}
	// Economics — a documented FINDING rather than a win condition: under
	// the paper's cost model, dynamic en-route caching fills copies from
	// passing streams for free, so pre-placement rarely beats the reactive
	// scheduler at equal tariffs. The seeded run must stay within the
	// plan's committed cost of the plain run (the seeds' worst case is
	// being pure overhead).
	committed := units.Money(0)
	for _, pl := range plan.Placements {
		committed += pl.CommittedCost
	}
	if float64(seeded.FinalCost) > float64(plain.FinalCost+committed)+1e-6 {
		t.Errorf("seeded %v exceeds plain %v + committed %v", seeded.FinalCost, plain.FinalCost, committed)
	}
	t.Logf("plain %v -> seeded %v with %d standing copies (committed %v)",
		plain.FinalCost, seeded.FinalCost, plan.NumCopies(), committed)
}

// TestStaticReplicationBeatsNoCaching is the clean demonstration of the
// placement machinery: against a system with NO dynamic caching (the
// network-only baseline), standing copies of the hot titles win decisively
// under skewed demand — every local request they absorb would otherwise be
// a full remote stream.
func TestStaticReplicationBeatsNoCaching(t *testing.T) {
	r := rig(t)
	if err := r.Book.SetPreloadFactor(0.25); err != nil { // off-peak bulk tariff
		t.Fatal(err)
	}
	plan, err := Build(r.Model, Config{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCopies() == 0 {
		t.Fatal("no placements")
	}
	reqs, err := workload.Generate(r.Topo, r.Catalog, workload.Config{Alpha: 0.1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := scheduler.RunDirect(r.Model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	static, err := scheduler.Run(r.Model, reqs, scheduler.Config{Policy: ivs.NoCaching, Seeds: plan.Seeds()})
	if err != nil {
		t.Fatal(err)
	}
	if err := static.Schedule.Validate(r.Topo, r.Catalog, reqs); err != nil {
		t.Fatalf("static schedule invalid: %v", err)
	}
	if float64(static.FinalCost) >= float64(noCache.FinalCost) {
		t.Errorf("static replication %v not cheaper than no-cache %v", static.FinalCost, noCache.FinalCost)
	}
	// Seeds actually serve requests in this mode.
	served := 0
	for _, fs := range static.Schedule.Files {
		for _, c := range fs.Residencies {
			if c.FedBy == schedule.PrePlacedFeed {
				served += len(c.Services)
			}
		}
	}
	if served == 0 {
		t.Error("no request served from a standing copy")
	}
	t.Logf("no-cache %v -> static replication %v (%d requests served from %d standing copies)",
		noCache.FinalCost, static.FinalCost, served, plan.NumCopies())
}

func prePlacementTotal(r *testutil.PaperRig, s *schedule.Schedule) units.Money {
	var total units.Money
	for _, fs := range s.Files {
		for _, c := range fs.Residencies {
			if c.FedBy == schedule.PrePlacedFeed {
				total += r.Model.PrePlacementCost(c)
			}
		}
	}
	return total
}

func TestSeedsForUnrequestedVideosAreCarried(t *testing.T) {
	r := rig(t)
	// Seed a video nobody requests; the schedule must carry and charge it.
	seed := schedule.Residency{
		Video: 39, Loc: r.Topo.Storages()[0], Src: r.Topo.Warehouse(),
		Load: 0, LastService: simtime.Time(12 * simtime.Hour),
		FedBy: schedule.PrePlacedFeed,
	}
	seeds := map[media.VideoID][]schedule.Residency{39: {seed}}
	out, err := scheduler.Run(r.Model, nil, scheduler.Config{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule.NumResidencies() != 1 {
		t.Fatalf("residencies = %d, want the carried seed", out.Schedule.NumResidencies())
	}
	want := r.Model.ResidencyCost(seed) + r.Model.PrePlacementCost(seed)
	if !out.FinalCost.ApproxEqual(want, 1e-6) {
		t.Errorf("cost = %v, want committed %v", out.FinalCost, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
