package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
)

// Replication & failover endpoints. A primary serves its WAL tail; a
// follower ships it in the background (StartReplication) and reports
// readiness only once caught up. Leadership is fenced by epoch: every
// stateful intake handler refuses on a non-primary with the
// stale-leadership error, and the fence endpoint demotes a node under a
// newer epoch.
//
//	GET  /readyz                    200 once serviceable, else 503 + lag
//	GET  /v1/replication/wal        ?after=N&epoch=E&max=M -> record batch
//	GET  /v1/replication/status     node's replication status
//	POST /v1/replication/fence      {"epoch": E} -> demote under E
//	POST /v1/replication/promote    {"force": bool, "fence_source": bool}

// StartReplication launches the background WAL shipper on a follower
// built with Options.ReplicateFrom. It is a no-op on other nodes.
// Shipping stops when ctx is cancelled, the node is promoted, or the
// server is closed.
func (s *Server) StartReplication(ctx context.Context) {
	if s.shipper == nil {
		return
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replCancel != nil {
		return // already running
	}
	s.replCtx = ctx
	s.startShipperLocked()
}

// startShipperLocked spawns the shipper goroutine; callers hold replMu
// and have set replCtx.
func (s *Server) startShipperLocked() {
	ctx, cancel := context.WithCancel(s.replCtx)
	done := make(chan struct{})
	s.replCancel, s.replDone = cancel, done
	go func() {
		defer close(done)
		s.shipper.Run(ctx)
	}()
}

// stopReplication cancels the shipper and waits for it to exit, so no
// batch can be applied after the caller proceeds (promotion must not
// race the applier). It reports whether shipping had been started.
func (s *Server) stopReplication() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replCancel == nil {
		return false
	}
	s.replCancel()
	<-s.replDone
	s.replCancel, s.replDone = nil, nil
	return true
}

// replStatus assembles the node's replication status and whether it is
// serviceable: a primary always is (recovery completed at construction
// or the server would not exist); a follower only once its shipper has
// synced and left no lag.
func (s *Server) replStatus() (replica.Status, bool) {
	if s.shipper != nil && !s.lead.IsPrimary() {
		st := s.shipper.Status()
		return st, st.Synced && st.CaughtUp
	}
	st := replica.Status{
		Role:       s.lead.Role().String(),
		Epoch:      s.lead.Epoch(),
		AppliedSeq: s.horizon.AppliedSeq(),
	}
	if s.shipper != nil {
		st.Source = s.shipper.Source()
	}
	if s.lead.IsPrimary() {
		st.Synced, st.CaughtUp = true, true
		return st, true
	}
	return st, false
}

// checkLeader writes the stale-leadership rejection for stateful intake
// on a non-primary and reports whether the request may proceed. 409
// mirrors the late-arrival conflict: the request is well-formed but the
// node cannot honor it, and retrying here will not help.
func (s *Server) checkLeader(w http.ResponseWriter) bool {
	if err := s.lead.CheckPrimary(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return false
	}
	return true
}

// ReadyResponse is the GET /readyz body.
type ReadyResponse struct {
	Ready  bool           `json:"ready"`
	Reason string         `json:"reason,omitempty"`
	Status replica.Status `json:"status"`
}

// handleReady is the load-balancer readiness probe: distinct from
// /healthz (liveness), it answers 503 while the node is alive but not
// serviceable — a follower still replaying the primary's journal — so
// traffic is not routed to a node that would reject or misserve it.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	st, ready := s.replStatus()
	resp := ReadyResponse{Ready: ready, Status: st}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
		switch {
		case st.LastError != "":
			resp.Reason = fmt.Sprintf("replication failing: %s", st.LastError)
		case !st.Synced:
			resp.Reason = "replication not yet synced with primary"
		case !st.CaughtUp:
			resp.Reason = fmt.Sprintf("replaying journal: %d records behind", st.Lag)
		default:
			resp.Reason = "follower without a replication source"
		}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	st, _ := s.replStatus()
	writeJSON(w, http.StatusOK, st)
}

// queryUint parses an optional unsigned query parameter.
func queryUint(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: %w", name, v, err)
	}
	return n, nil
}

// handleReplWAL serves one replication batch: the journal records after
// the requested sequence, or a full-state snapshot when those records
// were compacted away. The request's epoch parameter is the fencing
// token: a higher epoch proves this node was superseded and demotes it
// on the spot; a node that is not primary answers with the
// stale-leadership error.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	after, err := queryUint(r, "after")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	reqEpoch, err := queryUint(r, "epoch")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	max, err := queryUint(r, "max")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.lead.Observe(reqEpoch) // a newer epoch fences this node
	if err := s.lead.CheckPrimary(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	tail, err := s.horizon.TailAfter(after, int(max))
	if err != nil {
		if errors.Is(err, horizon.ErrNotDurable) {
			writeErr(w, http.StatusNotImplemented,
				fmt.Errorf("replication requires a durable primary (start it with -data-dir): %w", err))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	batch := replica.Batch{
		LeaderEpoch: s.lead.Epoch(),
		LastSeq:     tail.LastSeq,
		Snapshot:    tail.Snapshot,
		SnapshotSeq: tail.SnapshotSeq,
	}
	for _, rec := range tail.Records {
		batch.Records = append(batch.Records, replica.FromWAL(rec))
	}
	writeJSON(w, http.StatusOK, batch)
}

// FenceRequest is the POST /v1/replication/fence body.
type FenceRequest struct {
	Epoch uint64 `json:"epoch"`
}

// FenceResponse is the POST /v1/replication/fence reply.
type FenceResponse struct {
	Fenced bool   `json:"fenced"`
	Epoch  uint64 `json:"epoch"`
}

// handleFence demotes this node under a newer leadership epoch: its
// intake immediately starts rejecting with the stale-leadership error.
// A fence that does not supersede the node's epoch is itself stale and
// rejected, so an old primary cannot fence the node that replaced it.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	var req FenceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.lead.Fence(req.Epoch); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, FenceResponse{Fenced: true, Epoch: req.Epoch})
}

// drainForPromoteTimeout bounds the final catch-up drain a non-forced
// promotion performs against the primary.
const drainForPromoteTimeout = 10 * time.Second

// PromoteRequest is the POST /v1/replication/promote body. Force skips
// the final drain and caught-up check (for when the primary is
// unreachable and the operator accepts losing the unreplicated suffix —
// acknowledged reservations included, which is why it is never the
// default).
// FenceSource additionally fences the old primary, best-effort, under
// the new epoch.
type PromoteRequest struct {
	Force       bool `json:"force,omitempty"`
	FenceSource bool `json:"fence_source,omitempty"`
}

// PromoteResponse is the POST /v1/replication/promote reply.
type PromoteResponse struct {
	Promoted         bool   `json:"promoted"`
	Epoch            uint64 `json:"epoch"`
	AppliedSeq       uint64 `json:"applied_seq"`
	SourceFenced     bool   `json:"source_fenced,omitempty"`
	SourceFenceError string `json:"source_fence_error,omitempty"`
}

// handlePromote turns a caught-up follower into the serving primary:
// shipping is stopped first (no batch may apply once promotion begins),
// the recovered committed schedule is re-verified with the audit bundle
// — the same trust-nothing gate Recover applies — and only then is the
// leadership epoch bumped. On any refusal the shipper is restarted, so
// a failed promotion leaves a functioning follower.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.lead.IsPrimary() {
		writeErr(w, http.StatusConflict, fmt.Errorf("already primary at epoch %d", s.lead.Epoch()))
		return
	}
	wasShipping := s.stopReplication()
	restart := func() {
		if wasShipping {
			s.replMu.Lock()
			s.startShipperLocked()
			s.replMu.Unlock()
		}
	}
	if s.shipper != nil && !req.Force {
		// Drain the primary's tail rather than trusting the shipper's
		// last-polled status: the status is point-in-time, and promoting on
		// it would silently drop every record the primary acknowledged
		// since that poll. A planned failover must lose nothing; only an
		// explicit force (primary unreachable, operator accepts the loss)
		// may skip this.
		drainCtx, cancel := context.WithTimeout(r.Context(), drainForPromoteTimeout)
		err := s.shipper.Drain(drainCtx)
		cancel()
		if err != nil {
			restart()
			writeErr(w, http.StatusConflict,
				fmt.Errorf("cannot confirm catch-up with primary (%v); retry, or pass force to promote anyway and lose the unreplicated suffix", err))
			return
		}
		if st := s.shipper.Status(); !st.Synced || !st.CaughtUp {
			restart()
			writeErr(w, http.StatusConflict,
				fmt.Errorf("follower not caught up (applied seq %d, primary last seq %d, lag %d); retry or pass force",
					st.AppliedSeq, st.PrimaryLastSeq, st.Lag))
			return
		}
	}
	if err := s.horizon.VerifyCommitted(); err != nil {
		restart()
		writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("refusing promotion: replicated state fails audit: %w", err))
		return
	}
	epoch, err := s.lead.Promote()
	if err != nil {
		restart()
		writeErr(w, http.StatusConflict, err)
		return
	}
	resp := PromoteResponse{Promoted: true, Epoch: epoch, AppliedSeq: s.horizon.AppliedSeq()}
	if req.FenceSource && s.shipper != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		err := retryhttp.PostJSON(ctx, retryhttp.Options{MaxAttempts: 3},
			s.shipper.Source()+"/v1/replication/fence", FenceRequest{Epoch: epoch}, nil)
		if err != nil {
			resp.SourceFenceError = err.Error()
		} else {
			resp.SourceFenced = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
