package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Add(1, 10)
	s.Add(3, 30)
	s.Add(2, 20)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[1].X != 2 || s.Points[2].X != 3 {
		t.Errorf("SortByX: %v", s.Points)
	}
	ys := s.Ys()
	if len(ys) != 3 || ys[0] != 10 || ys[2] != 30 {
		t.Errorf("Ys = %v", ys)
	}
}

func TestMonotone(t *testing.T) {
	up := Series{Points: []Point{{0, 1}, {1, 2}, {2, 3}}}
	if !up.Monotone(+1, 0) {
		t.Error("increasing series not detected")
	}
	if up.Monotone(-1, 0) {
		t.Error("increasing series passed as decreasing")
	}
	down := Series{Points: []Point{{0, 3}, {1, 2}, {2, 1}}}
	if !down.Monotone(-1, 0) {
		t.Error("decreasing series not detected")
	}
	// Tolerance forgives a small dip.
	noisy := Series{Points: []Point{{0, 100}, {1, 99.5}, {2, 110}}}
	if noisy.Monotone(+1, 0) {
		t.Error("dip accepted at zero tolerance")
	}
	if !noisy.Monotone(+1, 0.01) {
		t.Error("1% tolerance should forgive a 0.5% dip")
	}
	var empty Series
	if !empty.Monotone(+1, 0) {
		t.Error("empty series must be trivially monotone")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.13809) > 1e-4 {
		t.Errorf("std = %g", s.Std)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Std != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{42})
	if one.Mean != 42 || one.Std != 0 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Error("Percent wrong")
	}
	if Percent(1, 0) != 0 {
		t.Error("Percent by zero must be 0")
	}
}

// TestNearestRankExact pins the nearest-rank definition on exact small
// sample sets. The regression of note: with 100 samples 1..100, the p50
// is the 50th sorted value (index 49) — the pre-fix len*p/100 indexing
// read the 51st.
func TestNearestRankExact(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{100, 50, 49},  // the off-by-one the fix pins: 50th value, not 51st
		{100, 99, 98},  // p99 of 100 samples is the 99th value
		{100, 100, 99}, // p100 is the max
		{100, 1, 0},
		{100, 0, 0},
		{1, 50, 0},
		{1, 99, 0},
		{2, 50, 0}, // ceil(1) - 1
		{2, 51, 1},
		{4, 50, 1},  // [10,20,30,40] → p50 = 20
		{4, 99, 3},  // ceil(3.96) - 1
		{5, 50, 2},  // odd n: the middle value
		{10, 90, 8}, // ceil(9) - 1
		{10, 91, 9},
		{0, 50, 0},
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.p); got != c.want {
			t.Errorf("NearestRank(%d, %g) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestPercentileValues(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 50); p != 20 {
		t.Errorf("p50 of [10 20 30 40] = %g, want 20", p)
	}
	if p := Percentile(sorted, 99); p != 40 {
		t.Errorf("p99 = %g, want 40", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %g", p)
	}
	// 1..100: p50 must be 50 exactly.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i + 1)
	}
	if p := Percentile(big, 50); p != 50 {
		t.Errorf("p50 of 1..100 = %g, want 50", p)
	}
	if p := Percentile(big, 99); p != 99 {
		t.Errorf("p99 of 1..100 = %g, want 99", p)
	}
}

func TestSummarizeLatency(t *testing.T) {
	// Unsorted on purpose: SummarizeLatency sorts in place.
	samples := []time.Duration{40, 10, 30, 20}
	ls := SummarizeLatency(samples)
	if ls.N != 4 || ls.P50 != 20 || ls.P99 != 40 || ls.Max != 40 || ls.Mean != 25 {
		t.Errorf("summary = %+v", ls)
	}
	if ls.P95 != 40 {
		t.Errorf("p95 = %v, want 40", ls.P95)
	}
	if got := SummarizeLatency(nil); got != (LatencySummary{}) {
		t.Errorf("empty latency summary = %+v", got)
	}
	one := SummarizeLatency([]time.Duration{7})
	if one.P50 != 7 || one.P99 != 7 || one.Max != 7 || one.Mean != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestPropertySummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean) &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Max) && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
