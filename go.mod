module github.com/vodsim/vsp

go 1.22
