package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// fastRetry keeps upstream retries snappy so failover paths resolve in
// milliseconds instead of the production backoff schedule.
var fastRetry = retryhttp.Options{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func testRig(t *testing.T) *experiment.Rig {
	t.Helper()
	r, err := experiment.Build(experiment.Params{
		Storages: 6, UsersPerStorage: 2, Titles: 8,
		CapacityGB: 2, RequestsPerUser: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// startShard binds a fresh server to a loopback port, registering
// cleanup. The caller gets the handles it needs to kill the node early.
func startShard(t *testing.T, r *experiment.Rig, opts server.Options) (string, *server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.NewWithOptions(r.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL, srv, ts
}

// startGateway serves gw over loopback with cleanup.
func startGateway(t *testing.T, cfg gateway.Config) (*gateway.Gateway, string) {
	t.Helper()
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	t.Cleanup(func() { ts.Close(); gw.Close() })
	return gw, ts.URL
}

func submit(t *testing.T, base string, req workload.Request) gateway.ReservationResponse {
	t.Helper()
	at := req.Start
	var ack gateway.ReservationResponse
	err := retryhttp.PostJSON(context.Background(), fastRetry, base+"/v1/reservations",
		server.ReservationRequest{User: req.User, Video: req.Video, Start: req.Start, At: &at}, &ack)
	if err != nil {
		t.Fatalf("submit (user %d, video %d, %v): %v", req.User, req.Video, req.Start, err)
	}
	return ack
}

func gatewayStats(t *testing.T, base string) gateway.StatsResponse {
	t.Helper()
	var st gateway.StatsResponse
	if err := retryhttp.GetJSON(context.Background(), fastRetry, base+"/v1/stats", &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundRobinRouting(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
	}
	_, base := startGateway(t, gateway.Config{Shards: shards, Retry: fastRetry})

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	for i, req := range reqs[:6] {
		ack := submit(t, base, req)
		if want := fmt.Sprintf("s%d", i%3); ack.Shard != want {
			t.Fatalf("submit %d routed to %q, want %q", i, ack.Shard, want)
		}
		if !ack.Accepted {
			t.Fatalf("submit %d not accepted", i)
		}
	}
	st := gatewayStats(t, base)
	if st.Policy != "round-robin" {
		t.Fatalf("policy %q, want round-robin", st.Policy)
	}
	if st.Routed != 6 {
		t.Fatalf("routed_total %d, want 6", st.Routed)
	}
	for _, row := range st.Shards {
		if row.Routed != 2 {
			t.Fatalf("shard %s routed %d, want 2", row.ID, row.Routed)
		}
		if row.Role != "primary" {
			t.Fatalf("shard %s polled role %q, want primary", row.ID, row.Role)
		}
		if row.Pending != 2 {
			t.Fatalf("shard %s polled pending %d, want 2", row.ID, row.Pending)
		}
	}
}

func TestLocalityRouting(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
	}
	_, base := startGateway(t, gateway.Config{
		Shards: shards, Policy: gateway.Locality(), Topo: r.Topo, Retry: fastRetry,
	})
	regions := gateway.UserRegions(r.Topo, 3)
	for u := 0; u < r.Topo.NumUsers(); u++ {
		ack := submit(t, base, workload.Request{User: topology.UserID(u), Video: 0, Start: simtime.Time(0).Add(simtime.Duration(u) * simtime.Hour)})
		if want := fmt.Sprintf("s%d", regions[u]); ack.Shard != want {
			t.Fatalf("user %d (region %d) routed to %q, want %q", u, regions[u], ack.Shard, want)
		}
	}
}

func TestHashRoutingDeterministic(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{Primary: url})
	}
	_, base := startGateway(t, gateway.Config{Shards: shards, Policy: gateway.Hash(), Retry: fastRetry})

	perVideo := make(map[int]string)
	used := make(map[string]bool)
	for round := 0; round < 2; round++ {
		for v := 0; v < r.Catalog.Len(); v++ {
			ack := submit(t, base, workload.Request{
				User: topology.UserID(v % r.Topo.NumUsers()), Video: media.VideoID(v),
				Start: simtime.Time(0).Add(simtime.Duration(round*100+v) * simtime.Minute),
			})
			if prev, ok := perVideo[v]; ok && prev != ack.Shard {
				t.Fatalf("video %d routed to %q then %q", v, prev, ack.Shard)
			}
			perVideo[v] = ack.Shard
			used[ack.Shard] = true
		}
	}
	if len(used) < 2 {
		t.Fatalf("hash placement used only %d shard(s) for %d titles", len(used), r.Catalog.Len())
	}
}

func TestLeastLoadedPolicyOrdering(t *testing.T) {
	p := gateway.LeastLoaded()
	views := []gateway.View{
		{Index: 0, Outstanding: 2},
		{Index: 1, Outstanding: 0, HasStats: true, Pending: 9},
		{Index: 2, Outstanding: 0, HasStats: true, Pending: 1},
	}
	if got := p.Place(gateway.RouteInfo{}, views); got != 2 {
		t.Fatalf("least-loaded picked %d, want 2 (fewest outstanding, lightest backlog)", got)
	}
	// Full tie keeps configuration order.
	views = []gateway.View{{Index: 0}, {Index: 1}, {Index: 2}}
	if got := p.Place(gateway.RouteInfo{}, views); got != 0 {
		t.Fatalf("least-loaded tie-break picked %d, want 0", got)
	}
}

func TestParsePlacement(t *testing.T) {
	for name, want := range map[string]string{
		"":             "round-robin",
		"round-robin":  "round-robin",
		"least-loaded": "least-loaded",
		"locality":     "locality",
		"hash":         "hash",
	} {
		p, err := gateway.ParsePlacement(name)
		if err != nil {
			t.Fatalf("ParsePlacement(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ParsePlacement(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := gateway.ParsePlacement("zonal"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestUserRegionsContiguousBalanced(t *testing.T) {
	topo := topology.Metro(topology.GenConfig{Storages: 7, UsersPerStorage: 3, Capacity: units.GBf(2)}, 3)
	regions := gateway.UserRegions(topo, 3)
	if len(regions) != topo.NumUsers() {
		t.Fatalf("got %d regions for %d users", len(regions), topo.NumUsers())
	}
	count := make(map[int]int)
	for u, reg := range regions {
		if reg < 0 || reg >= 3 {
			t.Fatalf("user %d in region %d, want [0,3)", u, reg)
		}
		count[reg]++
	}
	if len(count) != 3 {
		t.Fatalf("only %d of 3 regions populated: %v", len(count), count)
	}
	// Regions follow the storage order: users of one neighborhood never
	// split, and region sizes differ by at most one neighborhood.
	for reg, n := range count {
		if n%3 != 0 {
			t.Fatalf("region %d holds %d users — splits a 3-user neighborhood", reg, n)
		}
	}
}

func TestAdvanceBroadcastAndPlanMerge(t *testing.T) {
	r := testRig(t)
	var shards []gateway.ShardConfig
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{Primary: url})
	}
	_, base := startGateway(t, gateway.Config{Shards: shards, Retry: fastRetry})

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	var end simtime.Time
	for _, req := range reqs {
		submit(t, base, req)
		if req.Start > end {
			end = req.Start
		}
	}
	ctx := context.Background()
	var adv gateway.AdvanceResponse
	if err := retryhttp.PostJSON(ctx, fastRetry, base+"/v1/advance",
		server.AdvanceRequest{To: end.Add(simtime.Hour)}, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Admitted != len(reqs) {
		t.Fatalf("broadcast admitted %d, want %d", adv.Admitted, len(reqs))
	}
	if len(adv.Shards) != 3 {
		t.Fatalf("advance reported %d shards, want 3", len(adv.Shards))
	}
	var sum units.Money
	for _, se := range adv.Shards {
		sum += se.Result.Cost
	}
	if adv.Cost != sum {
		t.Fatalf("aggregate cost %v != per-shard sum %v", adv.Cost, sum)
	}
	// The aggregate must also decode as a plain EpochResult, so the
	// single-server driver works against a gateway unchanged.
	var er horizon.EpochResult
	if err := retryhttp.PostJSON(ctx, fastRetry, base+"/v1/advance",
		server.AdvanceRequest{To: end.Add(2 * simtime.Hour)}, &er); err != nil {
		t.Fatal(err)
	}
	if er.Horizon != end.Add(2*simtime.Hour) {
		t.Fatalf("EpochResult-compat decode: horizon %v, want %v", er.Horizon, end.Add(2*simtime.Hour))
	}

	var plan gateway.PlanResponse
	if err := retryhttp.GetJSON(ctx, fastRetry, base+"/v1/plan", &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Schedule == nil {
		t.Fatal("no merged schedule")
	}
	if err := plan.Schedule.Validate(r.Topo, r.Catalog, reqs); err != nil {
		t.Fatalf("merged plan invalid: %v", err)
	}
	if plan.Pending != 0 {
		t.Fatalf("pending %d after full advance", plan.Pending)
	}
	var costSum units.Money
	for _, sp := range plan.Shards {
		costSum += sp.Cost
	}
	if plan.Cost != costSum {
		t.Fatalf("plan cost %v != shard sum %v", plan.Cost, costSum)
	}
}

// A late arrival's 409 is a protocol answer, not a failover trigger: the
// gateway must relay it untouched and leave the standby alone.
func TestLateArrivalPassesThroughWithoutFailover(t *testing.T) {
	r := testRig(t)
	primaryURL, _, _ := startShard(t, r, server.Options{})
	standbyURL, _, _ := startShard(t, r, server.Options{Role: replica.RoleFollower})
	_, base := startGateway(t, gateway.Config{
		Shards: []gateway.ShardConfig{{ID: "s0", Primary: primaryURL, Standby: standbyURL}},
		Retry:  fastRetry,
	})
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	submit(t, base, reqs[len(reqs)-1])
	ctx := context.Background()
	to := reqs[len(reqs)-1].Start.Add(simtime.Hour)
	if err := retryhttp.PostJSON(ctx, fastRetry, base+"/v1/advance", server.AdvanceRequest{To: to}, nil); err != nil {
		t.Fatal(err)
	}
	early := simtime.Time(0)
	err := retryhttp.PostJSON(ctx, fastRetry, base+"/v1/reservations",
		server.ReservationRequest{User: reqs[0].User, Video: reqs[0].Video, Start: early}, nil)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict || !strings.Contains(se.Message, "frozen") {
		t.Fatalf("late arrival answered %v, want 409 frozen-window conflict", err)
	}
	if st := gatewayStats(t, base); st.Failovers != 0 {
		t.Fatalf("late arrival triggered %d failovers", st.Failovers)
	}
}

// waitReady polls a node's /readyz until it reports serviceable.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var ready server.ReadyResponse
		if err := retryhttp.GetJSON(context.Background(), fastRetry, base+"/readyz", &ready); err == nil && ready.Ready {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("standby at %s never became ready", base)
}

// A fenced primary (demoted out of band, e.g. by an operator or a rival
// promotion) must make the gateway promote the standby and retry — the
// stale-leadership 409 is the failover trigger.
func TestFencedPrimaryAutoFailover(t *testing.T) {
	r := testRig(t)
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primaryURL, _, _ := startShard(t, r, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	standbyURL, standby, _ := startShard(t, r, server.Options{
		DataDir: t.TempDir(), Horizon: cfg,
		ReplicateFrom: primaryURL, ReplicateEvery: 2 * time.Millisecond,
	})
	ctx := context.Background()
	standby.StartReplication(ctx)

	_, base := startGateway(t, gateway.Config{
		Shards: []gateway.ShardConfig{{ID: "s0", Primary: primaryURL, Standby: standbyURL}},
		Retry:  fastRetry,
	})
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	for _, req := range reqs[:3] {
		submit(t, base, req)
	}
	waitReady(t, standbyURL)

	if err := retryhttp.PostJSON(ctx, fastRetry, primaryURL+"/v1/replication/fence",
		server.FenceRequest{Epoch: 2}, nil); err != nil {
		t.Fatal(err)
	}
	ack := submit(t, base, reqs[3]) // hits the fenced primary, fails over, retries
	if !ack.Accepted {
		t.Fatal("post-failover submit not accepted")
	}
	st := gatewayStats(t, base)
	if st.Failovers != 1 {
		t.Fatalf("failovers_total %d, want 1", st.Failovers)
	}
	if got := st.Shards[0].Primary; got != standbyURL {
		t.Fatalf("shard primary is %q after failover, want the promoted standby %q", got, standbyURL)
	}
	var repl struct {
		Role string `json:"role"`
	}
	if err := retryhttp.GetJSON(ctx, fastRetry, standbyURL+"/v1/replication/status", &repl); err != nil {
		t.Fatal(err)
	}
	if repl.Role != "primary" {
		t.Fatalf("standby role %q after failover, want primary", repl.Role)
	}
}

// Without a standby, a dead primary is a plain upstream failure: the
// gateway answers 502 and names the missing standby.
func TestDeadPrimaryWithoutStandby(t *testing.T) {
	r := testRig(t)
	primaryURL, srv, ts := startShard(t, r, server.Options{})
	_, base := startGateway(t, gateway.Config{
		Shards: []gateway.ShardConfig{{ID: "s0", Primary: primaryURL}},
		Retry:  fastRetry,
	})
	ts.Close()
	srv.Close()
	err := retryhttp.PostJSON(context.Background(), retryhttp.Options{MaxAttempts: 1},
		base+"/v1/reservations",
		server.ReservationRequest{User: 0, Video: 0, Start: simtime.Time(simtime.Hour)}, nil)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("dead shard answered %v, want 502", err)
	}
	if !strings.Contains(se.Message, "no standby") {
		t.Fatalf("502 message %q does not name the missing standby", se.Message)
	}
}
