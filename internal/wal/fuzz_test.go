package wal

import (
	"bytes"
	"testing"
)

// fuzzStream builds a valid log stream for seeding.
func fuzzStream(payloads ...[]byte) []byte {
	out := []byte(logMagic)
	for i, p := range payloads {
		out = append(out, encodeRecord(uint64(i+1), p)...)
	}
	return out
}

// FuzzWALDecode feeds arbitrary byte streams — truncated, bit-flipped,
// garbage — to the record decoder. It must never panic, and its verdict
// must keep clean truncation (a torn tail, recoverable) strictly apart
// from corruption (damage, refuse to serve).
func FuzzWALDecode(f *testing.F) {
	valid := fuzzStream([]byte("submit{user:1}"), []byte("advance{to:7200}"), nil)
	f.Add(valid)                                    // pristine stream
	f.Add(valid[:len(valid)-3])                     // torn final record
	f.Add(valid[:len(logMagic)+5])                  // torn first header
	f.Add(valid[:len(logMagic)])                    // header only
	f.Add([]byte{})                                 // empty file
	f.Add([]byte("VSPWAL1\nnot a real record here")) // garbage after magic
	f.Add([]byte("VSPSNAP1"))                       // foreign magic
	f.Add(bytes.Repeat([]byte{0xff}, 64))           // all-ones noise
	flipped := append([]byte(nil), valid...)
	flipped[len(logMagic)+recordHeaderSize+2] ^= 0x01
	f.Add(flipped) // bit flip in a payload

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tail, err := DecodeAll(data)

		// Corruption and error must coincide exactly.
		if (tail == TailCorrupt) != (err != nil) {
			t.Fatalf("tail %v with err %v", tail, err)
		}
		// Decoded records must be reconstructible: re-encoding them must
		// reproduce a prefix of the input.
		enc := []byte(nil)
		if len(data) > 0 {
			enc = append(enc, logMagic...)
		}
		for _, r := range recs {
			enc = append(enc, encodeRecord(r.Seq, r.Payload)...)
		}
		if len(recs) > 0 && !bytes.HasPrefix(data, enc) {
			t.Fatalf("decoded records do not re-encode to an input prefix")
		}

		// Any prefix of a stream that decoded cleanly must itself decode
		// without being read as corruption: cutting a valid log at an
		// arbitrary byte is a crash, never damage.
		if tail == TailClean && len(data) > 0 {
			for _, cut := range []int{1, len(data) / 3, len(data) / 2, len(data) - 1} {
				if cut <= 0 || cut >= len(data) {
					continue
				}
				precs, ptail, perr := DecodeAll(data[:cut])
				if ptail == TailCorrupt {
					t.Fatalf("prefix cut=%d of a clean stream read as corrupt: %v", cut, perr)
				}
				if len(precs) > len(recs) {
					t.Fatalf("prefix decoded more records than the whole")
				}
			}
		}
	})
}
