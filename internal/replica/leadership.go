// Package replica implements the replicated-intake tier: WAL shipping
// from a serving primary to a warm standby, the follower-side applier
// that feeds shipped records through the horizon service's deterministic
// replay path, and the epoch-numbered leadership token that fences a
// demoted primary so two nodes never both accept submits.
//
// Shipping is follower-driven: the shipper polls the primary's
// replication endpoint, resuming from the follower's applied sequence,
// verifies each record's CRC, and applies it (idempotently by sequence)
// to the local service. Failover promotes a caught-up follower — after
// re-verifying its committed schedule with the audit bundle — and bumps
// the leadership epoch; the old primary, fenced with the new epoch,
// rejects all further intake with ErrStaleLeadership.
//
// Split-brain is out of scope by design: fencing is cooperative (the
// old primary must be reachable to learn it was deposed). An
// unreachable old primary keeps accepting submits until an operator or
// load balancer cuts it off; preventing that without reachability needs
// leases or quorum, which this tier deliberately does not implement.
// DESIGN.md §12 records the non-goals.
package replica

import (
	"errors"
	"fmt"
	"sync"
)

// Role is a node's serving role.
type Role int

const (
	// RolePrimary nodes accept submits and serve the replication stream.
	// It is the zero value: a standalone node is a primary.
	RolePrimary Role = iota
	// RoleFollower nodes apply replicated records and reject direct
	// intake; a fenced ex-primary is a follower too.
	RoleFollower
)

// String returns the flag spelling of the role.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// ParseRole parses the flag spelling ("primary", "follower").
func ParseRole(s string) (Role, error) {
	for _, r := range []Role{RolePrimary, RoleFollower} {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("replica: unknown role %q (want primary or follower)", s)
}

// ErrStaleLeadership rejects an operation made under a superseded
// leadership epoch: a submit to a fenced ex-primary, or a fence/
// replication request carrying an epoch the node has already moved past.
var ErrStaleLeadership = errors.New("replica: stale leadership epoch")

// Leadership is a node's view of who leads: its role plus the highest
// leadership epoch it has observed. Epochs only grow; promotion bumps
// the epoch, and any message carrying a higher epoch demotes a primary
// on the spot (it has provably been superseded).
type Leadership struct {
	mu    sync.Mutex
	role  Role
	epoch uint64
}

// NewLeadership returns a node's leadership state. A primary must start
// at epoch >= 1; a follower conventionally starts at 0 and adopts the
// primary's epoch from the replication stream.
func NewLeadership(role Role, epoch uint64) *Leadership {
	if role == RolePrimary && epoch == 0 {
		epoch = 1
	}
	return &Leadership{role: role, epoch: epoch}
}

// Role returns the current role.
func (l *Leadership) Role() Role {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.role
}

// Epoch returns the highest leadership epoch observed.
func (l *Leadership) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// IsPrimary reports whether the node currently leads.
func (l *Leadership) IsPrimary() bool { return l.Role() == RolePrimary }

// CheckPrimary returns nil when the node leads, and otherwise the
// ErrStaleLeadership-wrapping error every fenced intake path surfaces.
func (l *Leadership) CheckPrimary() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.role == RolePrimary {
		return nil
	}
	return fmt.Errorf("%w: this node is a follower (observed leader epoch %d)", ErrStaleLeadership, l.epoch)
}

// Observe folds in a leadership epoch seen on replication traffic. A
// higher epoch is adopted — demoting a primary, which has provably been
// superseded — and the return value reports whether a demotion
// happened.
func (l *Leadership) Observe(epoch uint64) (demoted bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch <= l.epoch {
		return false
	}
	demoted = l.role == RolePrimary
	l.epoch = epoch
	l.role = RoleFollower
	return demoted
}

// Fence demotes the node under a newer leadership epoch. A fence that
// does not advance the epoch is itself stale and rejected with
// ErrStaleLeadership — the fencer, not this node, is behind.
func (l *Leadership) Fence(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch <= l.epoch {
		return fmt.Errorf("%w: fence at epoch %d does not supersede epoch %d", ErrStaleLeadership, epoch, l.epoch)
	}
	l.epoch = epoch
	l.role = RoleFollower
	return nil
}

// Promote turns a follower into the primary under a new, higher epoch
// and returns that epoch. Promoting a node that already leads is an
// error: it would bump the epoch for nothing and fence its own
// followers' view.
func (l *Leadership) Promote() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.role == RolePrimary {
		return 0, fmt.Errorf("replica: already primary at epoch %d", l.epoch)
	}
	l.epoch++
	l.role = RolePrimary
	return l.epoch, nil
}
