package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// TestMain lets the test binary stand in for the real command: when
// VSPSERVE_MAIN=1 it runs main() instead of the test suite, so the graceful
// shutdown test below can drive a real process with real signals.
func TestMain(m *testing.M) {
	if os.Getenv("VSPSERVE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func writeFixtures(t *testing.T) (topoP, catP string) {
	t.Helper()
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 1, Capacity: 10 * units.GB})
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	topoP = filepath.Join(dir, "topo.json")
	f, err := os.Create(topoP)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, err = os.Create(catP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return
}

// TestGracefulShutdown: SIGTERM makes the server drain and exit cleanly.
func TestGracefulShutdown(t *testing.T) {
	topoP, catP := writeFixtures(t)
	cmd := exec.Command(os.Args[0],
		"-topo", topoP, "-catalog", catP, "-addr", "127.0.0.1:0", "-idle-timeout", "5s")
	cmd.Env = append(os.Environ(), "VSPSERVE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the startup line, then signal and collect the rest.
	sc := bufio.NewScanner(stderr)
	var lines []string
	started := false
	for sc.Scan() {
		lines = append(lines, sc.Text())
		if strings.Contains(sc.Text(), "listening on") {
			started = true
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !started {
		t.Fatalf("server never reported listening; log:\n%s", strings.Join(lines, "\n"))
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nlog:\n%s", err, strings.Join(lines, "\n"))
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit after SIGTERM; log:\n%s", strings.Join(lines, "\n"))
	}
	log := strings.Join(lines, "\n")
	if !strings.Contains(log, "shutting down") || !strings.Contains(log, "stopped") {
		t.Errorf("shutdown log incomplete:\n%s", log)
	}
}
