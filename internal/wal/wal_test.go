package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) (*Log, []Record, Tail) {
	t.Helper()
	l, recs, tail, err := Open(path, opts)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs, tail
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, tail := openT(t, path, Options{})
	if len(recs) != 0 || tail != TailClean {
		t.Fatalf("fresh log: %d records, tail %v", len(recs), tail)
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma gamma")}
	for i, p := range payloads {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, tail := openT(t, path, Options{})
	if tail != TailClean {
		t.Fatalf("reopen tail %v", tail)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("reopen: %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if l2.NextSeq() != uint64(len(payloads)+1) {
		t.Fatalf("next seq %d", l2.NextSeq())
	}
}

// A torn final record — any strict prefix of the file that cuts into the
// last record — must be discarded on open, keeping the complete prefix,
// and the log must accept appends afterwards.
func TestTornTailTruncatedAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	l, _, _ := openT(t, ref, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries: end of magic, end of each record.
	boundaries := map[int]int{len(logMagic): 0}
	off := len(logMagic)
	for i := 0; i < 3; i++ {
		off += recordHeaderSize + len(fmt.Sprintf("record-%d", i))
		boundaries[off] = i + 1
	}

	for cut := 1; cut < len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, tail, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantRecs, atBoundary := boundaries[cut]
		if !atBoundary && cut > 0 {
			// Mid-record: the valid prefix is the records before the cut.
			wantRecs = 0
			for b, n := range boundaries {
				if b <= cut && n > wantRecs {
					wantRecs = n
				}
			}
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), wantRecs)
		}
		if atBoundary && cut > 0 && tail != TailClean {
			t.Fatalf("cut %d on boundary: tail %v", cut, tail)
		}
		if !atBoundary && tail != TailTruncated {
			t.Fatalf("cut %d mid-record: tail %v", cut, tail)
		}
		// The log must be append-ready after tail repair.
		if _, err := l.Append([]byte("after-crash")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, recs2, tail2, err := Open(path, Options{})
		if err != nil || tail2 != TailClean {
			t.Fatalf("cut %d: reopen after repair: %v tail %v", cut, err, tail2)
		}
		if len(recs2) != wantRecs+1 {
			t.Fatalf("cut %d: %d records after repair append, want %d", cut, len(recs2), wantRecs+1)
		}
		l2.Close()
	}
}

// A bit flip inside a complete record is corruption: Open must refuse.
func TestCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, _ := openT(t, path, Options{})
	if _, err := l.Append([]byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the first record.
	data[len(logMagic)+recordHeaderSize] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, tail, err := Open(path, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted log opened: tail %v err %v", tail, err)
	}
	if tail != TailCorrupt {
		t.Fatalf("tail %v, want corrupt", tail)
	}

	// Foreign file contents are corruption too, not an empty log.
	bogus := filepath.Join(dir, "bogus.log")
	if err := os.WriteFile(bogus, []byte("definitely not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(bogus, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file opened: %v", err)
	}
}

func TestSnapshotRoundTripAndReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, _ := openT(t, path, Options{})
	var last uint64
	for i := 0; i < 5; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("op-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	state := []byte(`{"epoch":3}`)
	if err := WriteSnapshot(dir, last, state); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]byte("post-snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != last+1 {
		t.Fatalf("post-reset seq %d, want %d (monotonic across compaction)", seq, last+1)
	}
	l.Close()

	gotSeq, payload, ok, err := ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("read snapshot: ok=%v err=%v", ok, err)
	}
	if gotSeq != last || !bytes.Equal(payload, state) {
		t.Fatalf("snapshot (%d, %q), want (%d, %q)", gotSeq, payload, last, state)
	}
	_, recs, _ := openT(t, path, Options{})
	if len(recs) != 1 || recs[0].Seq != last+1 {
		t.Fatalf("compacted log: %+v", recs)
	}

	// No snapshot in a fresh dir is a clean miss, not an error.
	if _, _, ok, err := ReadSnapshot(t.TempDir()); ok || err != nil {
		t.Fatalf("empty dir snapshot: ok=%v err=%v", ok, err)
	}
	// A damaged snapshot is corruption.
	if err := os.WriteFile(filepath.Join(dir, SnapshotName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadSnapshot(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged snapshot read: %v", err)
	}
}

// A crash between snapshot publication and log reset leaves covered
// records in the log; their sequences are <= the snapshot's, so recovery
// can skip them. This pins the invariant the horizon recovery relies on.
func TestSnapshotCoversStaleRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, _ := openT(t, path, Options{})
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSnapshot(dir, 3, []byte("state")); err != nil {
		t.Fatal(err)
	}
	l.Close() // crash before Reset: all 4 records remain

	snapSeq, _, ok, err := ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatal(err)
	}
	_, recs, _ := openT(t, path, Options{})
	fresh := 0
	for _, r := range recs {
		if r.Seq > snapSeq {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d records past snapshot seq %d, want 1", fresh, snapSeq)
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

func TestFsyncIntervalDoesNotSyncEveryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openT(t, path, Options{Fsync: FsyncInterval, SyncEvery: time.Hour})
	before := l.lastSync
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l.lastSync != before {
		t.Fatal("interval policy synced immediately")
	}
	l2, _, _ := openT(t, filepath.Join(t.TempDir(), "w"), Options{Fsync: FsyncAlways})
	before = l2.lastSync
	time.Sleep(time.Millisecond)
	if _, err := l2.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l2.lastSync == before {
		t.Fatal("always policy did not sync")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, _, _ := openT(t, filepath.Join(t.TempDir(), "wal.log"), Options{})
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
}
