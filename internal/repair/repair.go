// Package repair turns a fault scenario from a schedule-killer into a
// degraded-mode plan: given a service schedule and the faults that will hit
// it, it produces a repaired schedule in which every impacted FUTURE
// service (one that could not start because its source, route or
// destination was down) is re-sourced through the cheapest surviving
// option, and reports what could not be saved and what the repair costs.
//
// The repair is a rejective greedy in the spirit of the paper's §4.4: the
// surviving residencies form the supply pool, the scenario's (interval,
// node) outage pairs are banned — a copy may not be extended into a window
// in which its host is dead — and every re-sourced stream is routed around
// edges and nodes that are down during its playback. Three re-sourcing
// moves exist, tried cheapest-first:
//
//   - serve from an alternate surviving cached copy (possibly extending
//     its residency, capacity- and ban-checked);
//   - re-route around the dead element to the same kind of source;
//   - fall back to a direct warehouse stream (always available while the
//     VW is not browned out and the user's access route survives).
//
// Severed in-flight streams are history — repair does not touch them — and
// dead copies are truncated to their surviving readers, so the repaired
// schedule's Ψ(S) is directly comparable to the fault-free cost.
package repair

import (
	"fmt"
	"sort"

	"github.com/vodsim/vsp/internal/analysis"
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Policy selects the repair strategy.
type Policy int

const (
	// Reroute picks, per impacted service, the cheapest surviving option:
	// an alternate cached copy, a re-routed stream, or a VW fallback.
	Reroute Policy = iota + 1
	// VWDirect re-sources every impacted service straight from the
	// warehouse over a fault-avoiding route, ignoring surviving copies.
	// Simpler and more predictable; never cheaper than Reroute.
	VWDirect
)

func (p Policy) String() string {
	switch p {
	case Reroute:
		return "reroute"
	case VWDirect:
		return "vw-direct"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name ("" defaults to reroute).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "reroute":
		return Reroute, nil
	case "vw-direct":
		return VWDirect, nil
	default:
		return 0, fmt.Errorf("repair: unknown policy %q (want reroute or vw-direct)", s)
	}
}

// Options configures a repair run.
type Options struct {
	// Policy defaults to Reroute.
	Policy Policy
}

// MissedService is one request no repair move could save.
type MissedService struct {
	Video  media.VideoID   `json:"video"`
	User   topology.UserID `json:"user"`
	Start  simtime.Time    `json:"start"`
	Reason string          `json:"reason"`
}

// Result reports a repair run.
type Result struct {
	// Schedule is the repaired schedule: surviving deliveries untouched,
	// dead copies truncated to their surviving readers, impacted services
	// re-sourced.
	Schedule *schedule.Schedule
	// Impacted counts the future services the scenario knocked out (the
	// repair work list); Severed counts in-flight streams the scenario
	// cuts, which repair cannot help.
	Impacted int
	Severed  int
	// Repaired = FromCache + FromVW; Missed lists what could not be
	// saved. Repaired + len(Missed) == Impacted.
	Repaired  int
	FromCache int
	FromVW    int
	Missed    []MissedService
	// DeadCopies counts residencies the scenario kills (truncated or
	// dropped in the repaired schedule).
	DeadCopies int
	// CostBefore is the fault-free Ψ(S); CostAfter is Ψ of the repaired
	// schedule. Delta() is the repair overhead (it can be negative: dead
	// copies stop being charged while fallback streams pay more network).
	CostBefore units.Money
	CostAfter  units.Money
	// Degraded-mode cache statistics of the repaired schedule.
	Copies     int
	HitRatePct float64
}

// Delta returns CostAfter − CostBefore, the repair cost delta vs. the
// fault-free Ψ(S).
func (r *Result) Delta() units.Money { return r.CostAfter - r.CostBefore }

// moneyEps mirrors the scheduler's deterministic tie-break: a candidate
// must beat the incumbent by more than this to win.
const moneyEps = 1e-9

// Repair builds the failure-aware repaired schedule for s under the given
// scenario. The input schedule is not modified.
func Repair(m *cost.Model, s *schedule.Schedule, sc *faults.Scenario, opts Options) (*Result, error) {
	if opts.Policy == 0 {
		opts.Policy = Reroute
	}
	topo := m.Book().Topology()
	if err := sc.Validate(topo); err != nil {
		return nil, err
	}
	imp := faults.Assess(topo, m.Catalog(), s, sc)
	res := &Result{CostBefore: m.ScheduleCost(s)}
	if imp == nil {
		res.Schedule = s.Clone()
		res.CostAfter = res.CostBefore
		summarize(m, res)
		return res, nil
	}
	res.Impacted = imp.Missed
	res.Severed = imp.Severed
	res.DeadCopies = imp.DeadResidencies

	repaired, work, deadAt := skeleton(s, imp)
	res.Schedule = repaired

	// Re-source the impacted services chronologically (ties by user then
	// video for determinism), sharing one capacity ledger across files so
	// extensions on different titles see each other.
	sort.Slice(work, func(i, j int) bool {
		a, b := work[i], work[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Video < b.Video
	})
	ledger := occupancy.FromSchedule(topo, m.Catalog(), repaired)
	bans := sc.BannedPairs()
	for _, r := range work {
		if reason, ok := resource(m, repaired, ledger, bans, deadAt, sc, r, opts, res); !ok {
			res.Missed = append(res.Missed, MissedService{
				Video: r.Video, User: r.User, Start: r.Start, Reason: reason,
			})
		}
	}

	if ovs := ledger.AllOverflows(); len(ovs) > 0 {
		return nil, fmt.Errorf("repair: produced %d capacity overflows, first %v", len(ovs), ovs[0])
	}
	// Structural self-check against exactly the requests the repaired
	// schedule claims to cover.
	covered := make(workload.Set, 0, repaired.NumDeliveries())
	for _, vid := range repaired.VideoIDs() {
		for _, d := range repaired.Files[vid].Deliveries {
			covered = append(covered, workload.Request{User: d.User, Video: d.Video, Start: d.Start})
		}
	}
	if err := repaired.Validate(topo, m.Catalog(), covered); err != nil {
		return nil, fmt.Errorf("repair: produced invalid schedule: %w", err)
	}
	res.CostAfter = m.ScheduleCost(repaired)
	summarize(m, res)
	return res, nil
}

func summarize(m *cost.Model, res *Result) {
	ar := analysis.Summarize(m, res.Schedule)
	res.Copies = ar.Copies
	res.HitRatePct = 100 * ar.HitRate()
}

// skeleton builds the surviving part of the schedule: missed deliveries
// removed (they become the work list), dead residencies truncated to their
// surviving readers or dropped, indices remapped. The returned map records,
// per surviving-but-dead copy (remapped ref), the instant its data is lost:
// re-sourcing must not point any service starting at or after that instant
// at the copy, since it holds only a prefix of the file from then on.
func skeleton(s *schedule.Schedule, imp *faults.Impact) (*schedule.Schedule, []workload.Request, map[occupancy.Ref]simtime.Time) {
	out := schedule.New()
	var work []workload.Request
	deadAt := make(map[occupancy.Ref]simtime.Time)
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		nf := &schedule.FileSchedule{Video: vid}

		// Keep every delivery that is not missed; collect the missed ones
		// as repair work. delMap remaps old delivery indices.
		delMap := make([]int, len(fs.Deliveries))
		for di, d := range fs.Deliveries {
			if imp.Delivery(vid, di).Fate == faults.FateMissed {
				delMap[di] = -1
				work = append(work, workload.Request{User: d.User, Video: d.Video, Start: d.Start})
				continue
			}
			delMap[di] = len(nf.Deliveries)
			d.Route = d.Route.Clone()
			nf.Deliveries = append(nf.Deliveries, d)
		}

		// Keep residencies whose data survives, dropping services that
		// were missed and truncating spans accordingly. resMap remaps old
		// residency indices.
		resMap := make([]int, len(fs.Residencies))
		for j, c := range fs.Residencies {
			resMap[j] = -1
			ri := imp.Residency(vid, j)
			preplaced := c.FedBy == schedule.PrePlacedFeed
			if ri.Dead && ri.DeadAt <= c.Load {
				continue // never written; nothing to keep
			}
			if !preplaced && delMap[c.FedBy] == -1 {
				continue // feed never flows; nothing to keep
			}
			var kept []int
			last := c.Load
			for _, di := range c.Services {
				if delMap[di] == -1 {
					continue
				}
				kept = append(kept, delMap[di])
				if fs.Deliveries[di].Start > last {
					last = fs.Deliveries[di].Start
				}
			}
			if preplaced {
				// A standing copy's span is planned infrastructure: keep
				// it (served or not), truncated to the death instant if
				// the scenario kills it.
				c.LastService = min(c.LastService, lastOr(ri, c.LastService))
			} else {
				if len(kept) == 0 {
					continue // no surviving reader; drop like prune would
				}
				c.LastService = last
			}
			c.Services = kept
			if !preplaced {
				c.FedBy = delMap[c.FedBy]
			}
			resMap[j] = len(nf.Residencies)
			if ri.Dead {
				deadAt[occupancy.Ref{Video: vid, Index: resMap[j]}] = ri.DeadAt
			}
			nf.Residencies = append(nf.Residencies, c)
		}

		// Point surviving deliveries at the remapped residencies.
		for i := range nf.Deliveries {
			if sr := nf.Deliveries[i].SourceResidency; sr != schedule.NoResidency {
				nf.Deliveries[i].SourceResidency = resMap[sr]
			}
		}
		if len(nf.Deliveries) > 0 || len(nf.Residencies) > 0 {
			out.Put(nf)
		}
	}
	return out, work, deadAt
}

func lastOr(ri faults.ResidencyImpact, fallback simtime.Time) simtime.Time {
	if ri.Dead {
		return ri.DeadAt
	}
	return fallback
}

func min(a, b simtime.Time) simtime.Time {
	if a < b {
		return a
	}
	return b
}

// resource serves one knocked-out request from the cheapest surviving
// option, mutating the repaired schedule and the ledger. It returns
// (reason, false) when no option survives the scenario.
func resource(m *cost.Model, repaired *schedule.Schedule, ledger *occupancy.Ledger,
	bans []occupancy.Banned, deadAt map[occupancy.Ref]simtime.Time, sc *faults.Scenario,
	r workload.Request, opts Options, res *Result) (string, bool) {

	topo := m.Book().Topology()
	book := m.Book()
	v := m.Catalog().Video(r.Video)
	dst := topo.User(r.User).Local
	window := simtime.NewInterval(r.Start, r.Start.Add(v.Playback))
	if sc.NodeDown(dst, window) {
		return fmt.Sprintf("destination storage %d down during playback", dst), false
	}
	// An edge is unusable if it or either endpoint is down at any point
	// of the playback window: streams hold their route for the full P.
	avoid := func(edgeIdx int) bool {
		if sc.EdgeDown(edgeIdx, window) {
			return true
		}
		e := topo.Edge(edgeIdx)
		return sc.NodeDown(e.A, window) || sc.NodeDown(e.B, window)
	}
	volume := v.StreamBytes().Float()

	fs := repaired.File(r.Video)
	if fs == nil {
		fs = &schedule.FileSchedule{Video: r.Video}
		repaired.Put(fs)
	}

	// Candidate 0: warehouse fallback on a fault-avoiding route. Repair
	// prices re-routed streams per-hop (the summed surviving-route rate).
	type candidate struct {
		route routing.Route
		resj  int
		cost  units.Money
	}
	var best *candidate
	if !sc.VWBrownedOutAt(r.Start) {
		if route, rate, err := routing.RouteAvoiding(book, topo.Warehouse(), dst, avoid); err == nil {
			best = &candidate{route: route, resj: schedule.NoResidency,
				cost: units.Money(volume * float64(rate))}
		}
	}
	if opts.Policy == Reroute {
		for j := range fs.Residencies {
			c := fs.Residencies[j]
			if c.Load > r.Start {
				continue // copy does not exist yet at service time
			}
			if sc.NodeDown(c.Loc, window) {
				continue // the source must stream for the whole playback
			}
			if at, dead := deadAt[occupancy.Ref{Video: r.Video, Index: j}]; dead && r.Start >= at {
				continue // the copy holds only a prefix from its death on
			}
			var candCost units.Money
			ext := c
			if c.FedBy == schedule.PrePlacedFeed {
				if r.Start > c.LastService {
					continue // standing copies are never extended
				}
			} else if r.Start > c.LastService {
				ext.LastService = r.Start
				// The extended profile may not reach into an outage of
				// its host (the data would be wiped mid-span) and must
				// fit the host's remaining capacity.
				if violatesAny(ext, v.Playback, bans) {
					continue
				}
				ref := occupancy.Ref{Video: r.Video, Index: j}
				if !ledger.CanFitExcluding(ext, &ref) {
					continue
				}
				candCost = m.ExtendCost(c, r.Start)
			}
			route, rate, err := routing.RouteAvoiding(book, c.Loc, dst, avoid)
			if err != nil {
				continue
			}
			candCost += units.Money(volume * float64(rate))
			if best == nil || candCost < best.cost-moneyEps {
				best = &candidate{route: route, resj: j, cost: candCost}
			}
		}
	}
	if best == nil {
		return "no surviving source: warehouse unavailable and no reachable cached copy", false
	}

	di := len(fs.Deliveries)
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: r.Video, User: r.User, Start: r.Start,
		Route: best.route, SourceResidency: best.resj,
	})
	if best.resj == schedule.NoResidency {
		res.FromVW++
	} else {
		c := &fs.Residencies[best.resj]
		c.Services = append(c.Services, di)
		if c.FedBy != schedule.PrePlacedFeed && r.Start > c.LastService {
			c.LastService = r.Start
		}
		ledger.Update(occupancy.Ref{Video: r.Video, Index: best.resj}, *c)
		res.FromCache++
	}
	res.Repaired++
	return "", true
}

func violatesAny(c schedule.Residency, playback simtime.Duration, bans []occupancy.Banned) bool {
	for _, bn := range bans {
		if bn.Violates(c, playback) {
			return true
		}
	}
	return false
}
