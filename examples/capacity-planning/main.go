// Capacity-planning: use the library the way an operator provisioning a
// deployment would. For a fixed workload and tariff, sweep the neighborhood
// disk size and the link bandwidth cap, and report where extra disk stops
// paying for itself (the paper's Fig. 9 insight: bigger caches matter most
// under skewed demand) and how much detour cost a bandwidth limit incurs
// (the paper's §6 future-work extension).
package main

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

func main() {
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 60, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== disk provisioning sweep (α = 0.1, skewed demand) ==")
	fmt.Println("disk/IS   total cost     savings vs direct")
	var prev vsp.Money
	for _, gb := range []float64{2, 4, 6, 8, 12, 16, 24} {
		topo := vsp.MetroTopology(vsp.GenConfig{
			Storages: 9, UsersPerStorage: 8, Capacity: vsp.GB(gb),
		}, 11)
		sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(3), vsp.PerGB(400))
		if err != nil {
			log.Fatal(err)
		}
		reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Alpha: 0.1, Seed: 12})
		if err != nil {
			log.Fatal(err)
		}
		out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
		if err != nil {
			log.Fatal(err)
		}
		direct, err := sys.ScheduleDirect(reqs)
		if err != nil {
			log.Fatal(err)
		}
		marginal := ""
		if prev != 0 {
			marginal = fmt.Sprintf("  (marginal %v)", out.FinalCost-prev)
		}
		prev = out.FinalCost
		fmt.Printf("%5.0f GB  %-12v %5.1f%%%s\n", gb, out.FinalCost,
			100*float64(direct.FinalCost-out.FinalCost)/float64(direct.FinalCost), marginal)
	}

	fmt.Println("\n== bandwidth feasibility (future-work extension) ==")
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 8, Capacity: vsp.GB(8),
	}, 11)
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(3), vsp.PerGB(400))
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Alpha: 0.1, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link cap   overloads  reroutes  unresolved  detour cost")
	for _, mbps := range []float64{200, 100, 60, 40, 30} {
		caps := sys.UniformLinkCapacities(vsp.Mbps(mbps))
		before := len(sys.LinkOverloads(out.Schedule, caps))
		res, err := sys.ResolveBandwidth(out.Schedule, caps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f Mbps  %9d  %8d  %10d  %v\n",
			mbps, before, res.Reroutes, len(res.Unresolved), res.Delta())
	}
	fmt.Println("\nTighter pipes force pricier detours until some windows become")
	fmt.Println("infeasible by rerouting alone — the point where an operator must")
	fmt.Println("add capacity or shift reservations.")
}
