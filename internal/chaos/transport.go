package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// Transport is a fault-injecting http.RoundTripper. Wrap a client's
// transport with it to degrade that client's view of the hosts matched
// by the injector's rules. Because the faults live on the caller's
// side, two clients with different injectors see the same server
// differently — the building block for asymmetric partitions.
type Transport struct {
	Injector *Injector
	Base     http.RoundTripper // nil = http.DefaultTransport
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.Injector
	o := in.decide(req.URL.Host, req.URL.Path)

	if o.delay > 0 {
		in.delayed.Add(1)
		if err := in.clock.Sleep(req.Context(), o.delay); err != nil {
			closeReqBody(req)
			return nil, err
		}
	}
	if o.drop {
		in.dropped.Add(1)
		closeReqBody(req)
		return nil, fmt.Errorf("chaos: connection to %s dropped", req.URL.Host)
	}
	if o.code != 0 {
		in.errored.Add(1)
		closeReqBody(req)
		return syntheticResponse(req, o.code), nil
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || o.cut < 0 || resp.Body == nil {
		return resp, err
	}
	in.cut.Add(1)
	resp.Body = &cutReader{rc: resp.Body, remain: o.cut, clean: o.cutClean}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

func closeReqBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func syntheticResponse(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("{\"error\":\"chaos: injected %d\"}\n", code)
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		h.Set("Retry-After", "1")
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// cutReader truncates a response body after remain bytes. A dirty cut
// surfaces io.ErrUnexpectedEOF, like a connection torn mid-body; a
// clean cut just ends early, like a tidy proxy that lost the tail.
type cutReader struct {
	rc     io.ReadCloser
	remain int
	clean  bool
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		if c.clean {
			return 0, io.EOF
		}
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= n
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }
