package scheduler

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// TestScheduleCancelledContext: an already-cancelled context must abort the
// run promptly (well under the time the full run would take on a sizeable
// workload) and surface context.Canceled.
func TestScheduleCancelledContext(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 8, 60, 5*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 8 * simtime.Hour, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	out, err := Schedule(ctx, rig.Model, reqs, Config{})
	if err == nil {
		t.Fatal("cancelled context produced a schedule")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if out != nil {
		t.Error("cancelled run returned a partial outcome")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled run took %v, want prompt abort", elapsed)
	}
}

// TestScheduleBackgroundMatchesRun: Schedule with a background context is
// exactly Run.
func TestScheduleBackgroundMatchesRun(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(f.Model, f.Requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(context.Background(), f.Model, f.Requests, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalCost != b.FinalCost || a.Phase1Cost != b.Phase1Cost {
		t.Errorf("Run and Schedule diverge: %+v vs %+v", a, b)
	}
}
