package faults

import (
	"fmt"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Fate classifies what a fault scenario does to one scheduled delivery.
type Fate int

const (
	// FateOK: the delivery streams exactly as scheduled.
	FateOK Fate = iota
	// FateSevered: the delivery starts on time but a fault cuts it
	// mid-playback; the user loses the tail of the stream. Severed
	// history is unrecoverable — repair cannot help it.
	FateSevered
	// FateMissed: the delivery cannot start at all (its source, route or
	// destination is down at start time). Missed services are the
	// repairable future.
	FateMissed
)

func (f Fate) String() string {
	switch f {
	case FateOK:
		return "ok"
	case FateSevered:
		return "severed"
	case FateMissed:
		return "missed"
	default:
		return fmt.Sprintf("Fate(%d)", int(f))
	}
}

// DeliveryImpact is the scenario's verdict on one delivery.
type DeliveryImpact struct {
	Fate Fate
	// At is the sever instant for FateSevered (the stream ran on
	// [Start, At)); it equals Start for FateMissed.
	At    simtime.Time
	Cause string
}

// ResidencyImpact is the scenario's verdict on one residency.
type ResidencyImpact struct {
	Dead bool
	// DeadAt is when the copy is lost; DeadAt <= Load means it never
	// materializes at all.
	DeadAt simtime.Time
	Cause  string
}

// FileImpact holds per-index verdicts for one file schedule, parallel to
// its Deliveries and Residencies slices.
type FileImpact struct {
	Deliveries  []DeliveryImpact
	Residencies []ResidencyImpact
}

// Impact is the full assessment of a scenario against a schedule.
type Impact struct {
	Files           map[media.VideoID]*FileImpact
	Missed          int
	Severed         int
	DeadResidencies int
}

// Any reports whether the scenario touches the schedule at all.
func (imp *Impact) Any() bool {
	return imp != nil && (imp.Missed > 0 || imp.Severed > 0 || imp.DeadResidencies > 0)
}

// Delivery returns the verdict on delivery i of video v (zero value — OK —
// when the impact is nil or does not cover it).
func (imp *Impact) Delivery(v media.VideoID, i int) DeliveryImpact {
	if imp == nil {
		return DeliveryImpact{}
	}
	fi := imp.Files[v]
	if fi == nil || i < 0 || i >= len(fi.Deliveries) {
		return DeliveryImpact{}
	}
	return fi.Deliveries[i]
}

// Residency returns the verdict on residency j of video v.
func (imp *Impact) Residency(v media.VideoID, j int) ResidencyImpact {
	if imp == nil {
		return ResidencyImpact{}
	}
	fi := imp.Files[v]
	if fi == nil || j < 0 || j >= len(fi.Residencies) {
		return ResidencyImpact{}
	}
	return fi.Residencies[j]
}

// Assess computes, file by file, which deliveries and residencies the
// scenario breaks, propagating consequences to a fixpoint: a severed or
// missed feed kills the copy it was filling; a dead copy orphans (misses)
// every service that would have started at or after its death; orphaned
// services kill the copies THEY feed, and so on. Readers in flight when a
// copy dies by cascade keep playing (they consume the prefix already
// written); readers whose own route touches a dead node are severed by the
// route analysis directly.
//
// A nil or empty scenario returns a nil Impact, on which the query methods
// report every element untouched.
func Assess(topo *topology.Topology, catalog *media.Catalog, s *schedule.Schedule, sc *Scenario) *Impact {
	if sc.Empty() {
		return nil
	}
	imp := &Impact{Files: make(map[media.VideoID]*FileImpact, len(s.Files))}
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		playback := catalog.Video(vid).Playback
		fi := &FileImpact{
			Deliveries:  make([]DeliveryImpact, len(fs.Deliveries)),
			Residencies: make([]ResidencyImpact, len(fs.Residencies)),
		}
		assessDirect(topo, sc, fs, playback, fi)
		cascade(fs, fi)
		for _, di := range fi.Deliveries {
			switch di.Fate {
			case FateMissed:
				imp.Missed++
			case FateSevered:
				imp.Severed++
			}
		}
		for _, ri := range fi.Residencies {
			if ri.Dead {
				imp.DeadResidencies++
			}
		}
		imp.Files[vid] = fi
	}
	return imp
}

// assessDirect applies each fault window to the deliveries and residencies
// it hits by construction (route membership, hosting node, warehouse
// admission), before any cascading.
func assessDirect(topo *topology.Topology, sc *Scenario, fs *schedule.FileSchedule, playback simtime.Duration, fi *FileImpact) {
	for i, d := range fs.Deliveries {
		active := simtime.NewInterval(d.Start, d.Start.Add(playback))
		hit := func(w simtime.Interval, cause string) {
			cur := &fi.Deliveries[i]
			if w.Contains(d.Start) {
				if cur.Fate != FateMissed {
					*cur = DeliveryImpact{Fate: FateMissed, At: d.Start, Cause: cause}
				}
				return
			}
			if w.Start > d.Start && w.Start < active.End {
				if cur.Fate == FateOK || (cur.Fate == FateSevered && w.Start < cur.At) {
					*cur = DeliveryImpact{Fate: FateSevered, At: w.Start, Cause: cause}
				}
			}
		}
		for _, n := range d.Route {
			for _, w := range sc.NodeWindows(n) {
				hit(w, fmt.Sprintf("node %d down %v", n, w))
			}
		}
		for h := 1; h < len(d.Route); h++ {
			e, ok := topo.EdgeBetween(d.Route[h-1], d.Route[h])
			if !ok {
				continue // structurally invalid hop; vodsim flags it
			}
			for _, w := range sc.EdgeWindows(e) {
				hit(w, fmt.Sprintf("link %d down %v", e, w))
			}
		}
		if d.SourceResidency == schedule.NoResidency {
			for _, w := range sc.BrownoutWindows() {
				if w.Contains(d.Start) {
					fi.Deliveries[i] = DeliveryImpact{Fate: FateMissed, At: d.Start,
						Cause: fmt.Sprintf("VW brown-out %v", w)}
				}
			}
		}
	}
	for j, c := range fs.Residencies {
		support := c.Support(playback)
		for _, w := range sc.NodeWindows(c.Loc) {
			if !w.Overlaps(support) {
				continue
			}
			deadAt := simtime.Max(c.Load, w.Start)
			markDead(&fi.Residencies[j], deadAt, fmt.Sprintf("node %d down %v", c.Loc, w))
		}
		if c.FedBy == schedule.PrePlacedFeed {
			for _, w := range sc.BrownoutWindows() {
				if w.Contains(c.Load) {
					markDead(&fi.Residencies[j], c.Load,
						fmt.Sprintf("pre-placement blocked by VW brown-out %v", w))
				}
			}
		}
	}
}

func markDead(ri *ResidencyImpact, at simtime.Time, cause string) {
	if !ri.Dead || at < ri.DeadAt {
		*ri = ResidencyImpact{Dead: true, DeadAt: at, Cause: cause}
	}
}

// cascade propagates feed and source failures within one file to a
// fixpoint. Every pass is monotone (fates only worsen, death times only
// move earlier), so the loop terminates.
func cascade(fs *schedule.FileSchedule, fi *FileImpact) {
	for changed := true; changed; {
		changed = false
		for j, c := range fs.Residencies {
			if c.FedBy == schedule.PrePlacedFeed {
				continue
			}
			feed := fi.Deliveries[c.FedBy]
			var deadAt simtime.Time
			switch feed.Fate {
			case FateMissed:
				deadAt = c.Load
			case FateSevered:
				deadAt = simtime.Max(c.Load, feed.At)
			default:
				continue
			}
			ri := &fi.Residencies[j]
			if !ri.Dead || deadAt < ri.DeadAt {
				markDead(ri, deadAt, fmt.Sprintf("feed delivery %d %s (%s)", c.FedBy, feed.Fate, feed.Cause))
				changed = true
			}
		}
		for i, d := range fs.Deliveries {
			if d.SourceResidency == schedule.NoResidency {
				continue
			}
			ri := fi.Residencies[d.SourceResidency]
			if !ri.Dead || d.Start < ri.DeadAt {
				continue
			}
			if fi.Deliveries[i].Fate != FateMissed {
				fi.Deliveries[i] = DeliveryImpact{Fate: FateMissed, At: d.Start,
					Cause: fmt.Sprintf("source residency %d dead at %v (%s)", d.SourceResidency, ri.DeadAt, ri.Cause)}
				changed = true
			}
		}
	}
}
