// Package workload generates Video-On-Reservation request batches. A
// request is (user, video, start time); the scheduler collects the batch
// for a cycle up front (paper §2.1), which is what enables the global
// optimization the paper exploits.
//
// Title popularity follows a Zipf-like distribution: the probability of
// the rank-i title (0-based rank r, i = r+1) is proportional to
// 1/i^(1-α). Smaller α means more skew; α→1 approaches uniform. This is
// the parameterization of Dan & Sitaram, whose α = 0.271 was shown to
// approximate commercial video-rental patterns, and is the one the paper's
// Experiment 3 sweeps (§5.4).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Request is one reservation: user asks for video starting at Start.
// The JSON field names match the intake wire format (server
// ReservationRequest), so a JSONL trace line can be submitted as-is;
// decoding is case-insensitive, so older capitalized payloads still load.
type Request struct {
	User  topology.UserID `json:"user"`
	Video media.VideoID   `json:"video"`
	Start simtime.Time    `json:"start"`
}

// Set is a batch of requests for one scheduling cycle.
type Set []Request

// ByVideo partitions the set into per-title request lists R_i, each sorted
// chronologically (ties broken by user ID for determinism). This is the
// partition the individual video scheduling phase works on (paper §3.2).
func (s Set) ByVideo() map[media.VideoID][]Request {
	out := make(map[media.VideoID][]Request)
	for _, r := range s {
		out[r.Video] = append(out[r.Video], r)
	}
	for _, rs := range out {
		SortChronological(rs)
	}
	return out
}

// Videos returns the distinct requested titles in ascending ID order.
func (s Set) Videos() []media.VideoID {
	seen := make(map[media.VideoID]bool)
	for _, r := range s {
		seen[r.Video] = true
	}
	out := make([]media.VideoID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Window returns the earliest start and the latest start in the set.
func (s Set) Window() (simtime.Time, simtime.Time) {
	if len(s) == 0 {
		return 0, 0
	}
	lo, hi := s[0].Start, s[0].Start
	for _, r := range s[1:] {
		if r.Start < lo {
			lo = r.Start
		}
		if r.Start > hi {
			hi = r.Start
		}
	}
	return lo, hi
}

// SortChronological sorts requests by start time, breaking ties by user ID.
func SortChronological(rs []Request) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Start != rs[j].Start {
			return rs[i].Start < rs[j].Start
		}
		return rs[i].User < rs[j].User
	})
}

// Zipf draws title ranks with P(rank r) ∝ 1/(r+1)^(1-α).
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds the distribution over n titles with skew parameter
// α ∈ [0, 1]. α = 1 is exactly uniform.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("workload: zipf alpha must be in [0,1], got %g", alpha)
	}
	z := &Zipf{cdf: make([]float64, n), alpha: alpha}
	theta := 1 - alpha
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z, nil
}

// Alpha returns the skew parameter.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Prob returns the probability of the rank-r title (0-based).
func (z *Zipf) Prob(r int) float64 {
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// Draw samples a title rank using the given RNG.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Arrival distributes request start times over the cycle window.
type Arrival int

const (
	// Uniform spreads start times uniformly over the window.
	Uniform Arrival = iota
	// EveningPeak concentrates start times around 3/4 of the window
	// (triangular distribution), modelling the prime-time surge the
	// paper's home-entertainment scenario implies.
	EveningPeak
	// Slotted aligns uniform start times to half-hour boundaries, the
	// natural granularity of a reservation interface.
	Slotted
)

func (a Arrival) String() string {
	switch a {
	case Uniform:
		return "uniform"
	case EveningPeak:
		return "evening-peak"
	case Slotted:
		return "slotted"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// Config parameterizes request-set generation. Zero values take the
// paper's defaults: every user issues one request, uniformly over a
// 12-hour reservation window.
type Config struct {
	Alpha           float64          // Zipf skew (default 0.271)
	Window          simtime.Duration // cycle window length (default 12h)
	Arrival         Arrival          // start-time process
	RequestsPerUser int              // requests issued per user (default 1)
	Seed            int64            // RNG seed
	// Locality in [0, 1] adds regional taste variation: with probability
	// Locality a user's drawn popularity rank is remapped through a
	// neighborhood-specific permutation of the catalog, so neighborhoods
	// agree on how *concentrated* demand is but not on *which* titles are
	// hot. 0 (default) reproduces the paper's globally shared ranking.
	Locality float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.271
	}
	if c.Window == 0 {
		c.Window = 12 * simtime.Hour
	}
	if c.RequestsPerUser == 0 {
		c.RequestsPerUser = 1
	}
	return c
}

// Generate builds a request batch: every user of the topology issues
// RequestsPerUser requests for titles drawn from Zipf(α) at start times
// drawn from the arrival process. Generation is deterministic per
// (topology, catalog, config).
func Generate(topo *topology.Topology, catalog *media.Catalog, cfg Config) (Set, error) {
	cfg = cfg.withDefaults()
	if catalog.Len() == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("workload: locality must be in [0,1], got %g", cfg.Locality)
	}
	zipf, err := NewZipf(catalog.Len(), cfg.Alpha)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perms := localPermutations(topo, catalog.Len(), cfg, rng)
	set := make(Set, 0, topo.NumUsers()*cfg.RequestsPerUser)
	for _, u := range topo.Users() {
		for k := 0; k < cfg.RequestsPerUser; k++ {
			start := drawStart(rng, cfg)
			rank := zipf.Draw(rng)
			if cfg.Locality > 0 && rng.Float64() < cfg.Locality {
				rank = remapRank(perms, u.Local, rank)
			}
			set = append(set, Request{
				User:  u.ID,
				Video: media.VideoID(rank),
				Start: start,
			})
		}
	}
	SortChronological(set)
	return set, nil
}

// localPermutations builds one catalog permutation per neighborhood when
// locality is enabled; nil otherwise.
func localPermutations(topo *topology.Topology, titles int, cfg Config, rng *rand.Rand) map[topology.NodeID][]int {
	if cfg.Locality <= 0 {
		return nil
	}
	perms := make(map[topology.NodeID][]int)
	for _, is := range topo.Storages() {
		perms[is] = rng.Perm(titles)
	}
	return perms
}

// remapRank sends a drawn popularity rank through the local node's
// catalog permutation. Permutations exist only for the intermediate
// storages; a user homed anywhere else (a topology form where users sit
// on the warehouse, say) falls back to the identity mapping instead of
// indexing a nil slice and panicking.
func remapRank(perms map[topology.NodeID][]int, local topology.NodeID, rank int) int {
	perm, ok := perms[local]
	if !ok {
		return rank
	}
	return perm[rank]
}

func drawStart(rng *rand.Rand, cfg Config) simtime.Time {
	w := int64(cfg.Window)
	switch cfg.Arrival {
	case EveningPeak:
		// Triangular distribution with mode at 3/4 of the window.
		mode := 0.75
		u := rng.Float64()
		var x float64
		if u < mode {
			x = math.Sqrt(u * mode)
		} else {
			x = 1 - math.Sqrt((1-u)*(1-mode))
		}
		return simtime.Time(int64(x * float64(w)))
	case Slotted:
		slot := int64(30 * simtime.Minute)
		nSlots := w / slot
		if nSlots == 0 {
			nSlots = 1
		}
		return simtime.Time(rng.Int63n(nSlots) * slot)
	default:
		return simtime.Time(rng.Int63n(w))
	}
}
