// Package horizon implements an epoch-based rolling-horizon scheduling
// service on top of the paper's two-phase scheduler. The paper assumes the
// whole reservation batch is known before the cycle starts (§2.1); a
// production system instead sees a *stream* of reservations arriving ahead
// of their start times, and must keep a committed schedule live while new
// requests land.
//
// The service maintains a commit horizon H. Every transfer record whose
// start time and every residency record whose load time falls before H is
// frozen: committed history the planner may no longer rearrange. Arriving
// reservations accumulate in a pending intake buffer; an epoch closes when
// a configured trigger fires (request count, byte volume, or an arrival
// wall-clock tick), and Advance(T) then runs an incremental plan extension:
//
//   - split the committed schedule at the new horizon T — records before T
//     freeze in place, records at or after T are torn up and their requests
//     re-enter the planning pool together with the pending intake;
//   - re-run IVS per file over only the un-frozen requests, with the frozen
//     residencies staying in the candidate pool as free cache-extension
//     sources (their committed span is sunk cost, so serving a new request
//     from one is priced at the marginal extension alone);
//   - re-run SORP over the integrated result with capacity accounting that
//     includes the frozen occupancy, never selecting a frozen copy as a
//     rescheduling victim.
//
// Per-file IVS inside an epoch fans out over a bounded worker pool:
// individual file schedules are independent until SORP integration, which
// is exactly the paper's phase boundary. A reservation whose start time
// already lies inside the frozen window is rejected with ErrLateArrival.
//
// With everything submitted before the first epoch closes (all requests in
// epoch 0, horizon 0), nothing freezes and the pipeline degenerates to the
// one-shot scheduler: the incremental result is byte-identical to
// scheduler.Schedule.
package horizon

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/parallel"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// ErrLateArrival is returned by Submit for a reservation whose start time
// lies inside the frozen window: the schedule up to the commit horizon is
// already executing and cannot absorb it. Callers should surface this to
// the requesting user as a "too late, pick a later start" condition.
var ErrLateArrival = errors.New("horizon: reservation starts inside the frozen window")

// Config parameterizes the service. The three epoch triggers are
// independent; any non-zero one arms, and the epoch is due as soon as the
// first fires. With all three zero the service never signals an epoch
// boundary on its own and the caller decides when to Advance.
type Config struct {
	// Policy is the caching policy for both scheduling phases.
	Policy ivs.Policy
	// Metric is the SORP victim-selection metric (default SpacePerCost).
	Metric sorp.HeatMetric
	// EpochRequests closes the epoch after this many pending reservations.
	EpochRequests int
	// EpochBytes closes the epoch once the pending reservations' amortized
	// stream volume (Σ P_i · B_i) reaches this many bytes.
	EpochBytes float64
	// EpochTick closes the epoch when the arrival clock has progressed this
	// far since the last Advance.
	EpochTick simtime.Duration
	// Workers bounds the per-file IVS fan-out and the SORP candidate
	// evaluation inside Advance; 0 means GOMAXPROCS. The committed
	// schedule is byte-identical for every worker count.
	Workers int

	// The remaining fields only apply to durable services (opened with
	// Recover); an in-memory Service from New ignores them.

	// SnapshotEvery compacts the journal with a full-state snapshot
	// every this many committed epochs. 0 means DefaultSnapshotEvery;
	// negative disables snapshots (the journal grows without bound).
	SnapshotEvery int
	// Fsync is the journal flush policy (default wal.FsyncAlways).
	Fsync wal.FsyncPolicy
	// FsyncInterval bounds the sync lag under wal.FsyncInterval.
	FsyncInterval time.Duration
}

// DefaultSnapshotEvery is the journal compaction period in epochs.
const DefaultSnapshotEvery = 4

// Trigger names the condition that closed an epoch.
type Trigger string

const (
	TriggerNone     Trigger = ""
	TriggerRequests Trigger = "requests"
	TriggerBytes    Trigger = "bytes"
	TriggerTick     Trigger = "tick"
)

// Ack acknowledges one accepted reservation.
type Ack struct {
	// Pending is the intake buffer size after this submission.
	Pending int
	// PendingBytes is the buffered amortized stream volume in bytes.
	PendingBytes float64
	// EpochDue reports that a configured trigger has fired; the caller
	// should Advance to commit the buffered work.
	EpochDue bool
	// Trigger names the condition that fired (empty when !EpochDue).
	Trigger Trigger
}

// EpochResult reports one Advance.
type EpochResult struct {
	// Epoch is the 0-based index of the epoch just committed.
	Epoch int `json:"epoch"`
	// Horizon is the new commit horizon.
	Horizon simtime.Time `json:"horizon"`
	// Admitted counts the pending reservations planned this epoch.
	Admitted int `json:"admitted"`
	// Replanned counts previously committed requests that were still ahead
	// of the new horizon and were torn up and rescheduled.
	Replanned int `json:"replanned"`
	// FrozenDeliveries and FrozenResidencies count the records carried
	// through untouched.
	FrozenDeliveries  int `json:"frozen_deliveries"`
	FrozenResidencies int `json:"frozen_residencies"`
	// Overflows is the number of storage overflows detected when the
	// incremental per-file schedules were integrated.
	Overflows int `json:"overflows"`
	// Victims lists the SORP rescheduling decisions in order.
	Victims []sorp.Victim `json:"victims,omitempty"`
	// Cost is Ψ(S) of the committed schedule after this epoch.
	Cost units.Money `json:"cost"`
}

// Service is the rolling-horizon scheduler. All methods are safe for
// concurrent use.
type Service struct {
	mu  sync.Mutex
	m   *cost.Model
	cfg Config

	horizon    simtime.Time // commit horizon H
	epoch      int          // epochs committed so far
	clock      simtime.Time // latest arrival instant seen
	epochClock simtime.Time // arrival clock at the last Advance

	committed    *schedule.Schedule
	cost         units.Money
	accepted     workload.Set // every reservation ever accepted
	pending      workload.Set // accepted but not yet planned
	pendingBytes float64

	// Durability (nil/zero for in-memory services; see durable.go).
	journal  *wal.Log
	dir      string
	lastSeq  uint64
	recovery RecoveryStats
}

// New returns a service with an empty committed schedule and horizon 0.
func New(m *cost.Model, cfg Config) *Service {
	if cfg.Metric == 0 {
		cfg.Metric = sorp.SpacePerCost
	}
	return &Service{m: m, cfg: cfg, committed: schedule.New()}
}

// Horizon returns the current commit horizon.
func (s *Service) Horizon() simtime.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.horizon
}

// Epoch returns the number of epochs committed so far.
func (s *Service) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Pending returns the intake buffer size.
func (s *Service) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Cost returns Ψ(S) of the committed schedule.
func (s *Service) Cost() units.Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

// Committed returns a deep copy of the committed schedule.
func (s *Service) Committed() *schedule.Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed.Clone()
}

// Accepted returns a copy of every reservation accepted so far, planned or
// pending.
func (s *Service) Accepted() workload.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(workload.Set(nil), s.accepted...)
}

// Submit offers one reservation arriving at instant at. It is rejected
// with ErrLateArrival when its start time lies before the commit horizon;
// otherwise it is buffered and the returned Ack reports whether an epoch
// trigger has fired.
func (s *Service) Submit(at simtime.Time, r workload.Request) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(at, r)
}

// submitLocked is Submit's body; callers hold s.mu. It is the single
// intake path: live submissions, crash-recovery replay and the
// replication applier all come through here, which is what makes replay
// deterministic.
func (s *Service) submitLocked(at simtime.Time, r workload.Request) (Ack, error) {
	if int(r.Video) < 0 || int(r.Video) >= s.m.Catalog().Len() {
		return Ack{}, fmt.Errorf("horizon: unknown video %d", r.Video)
	}
	if int(r.User) < 0 || int(r.User) >= s.m.Book().Topology().NumUsers() {
		return Ack{}, fmt.Errorf("horizon: unknown user %d", r.User)
	}
	if r.Start < s.horizon {
		return Ack{}, fmt.Errorf("%w: start %v is before commit horizon %v",
			ErrLateArrival, r.Start, s.horizon)
	}
	// Journal before mutating: a reservation is acknowledged only once it
	// is on the log (per the configured fsync policy). A failed append
	// leaves the in-memory state untouched.
	if s.journal != nil {
		if err := s.journalOp(walOp{Op: opSubmit, At: at, User: r.User, Video: r.Video, Start: r.Start}); err != nil {
			return Ack{}, fmt.Errorf("horizon: journal submit: %w", err)
		}
	}
	s.clock = simtime.Max(s.clock, at)
	s.pending = append(s.pending, r)
	s.accepted = append(s.accepted, r)
	s.pendingBytes += s.m.Catalog().Video(r.Video).StreamBytes().Float()

	ack := Ack{Pending: len(s.pending), PendingBytes: s.pendingBytes}
	switch {
	case s.cfg.EpochRequests > 0 && len(s.pending) >= s.cfg.EpochRequests:
		ack.EpochDue, ack.Trigger = true, TriggerRequests
	case s.cfg.EpochBytes > 0 && s.pendingBytes >= s.cfg.EpochBytes:
		ack.EpochDue, ack.Trigger = true, TriggerBytes
	case s.cfg.EpochTick > 0 && s.clock.Sub(s.epochClock) >= s.cfg.EpochTick:
		ack.EpochDue, ack.Trigger = true, TriggerTick
	}
	return ack, nil
}

// Advance closes the current epoch: it moves the commit horizon to the
// given time (which may not move backwards), freezes every record before
// it, and re-plans the un-frozen window plus the pending intake. On
// success the committed schedule reflects every accepted reservation and
// is free of storage overflows; on error the previous committed state is
// left untouched.
func (s *Service) Advance(ctx context.Context, to simtime.Time) (*EpochResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceLocked(ctx, to)
}

// advanceLocked is Advance's body; callers hold s.mu. Like submitLocked
// it is shared by live traffic, recovery replay and replication apply.
func (s *Service) advanceLocked(ctx context.Context, to simtime.Time) (*EpochResult, error) {
	if to < s.horizon {
		return nil, fmt.Errorf("horizon: cannot move horizon backwards from %v to %v", s.horizon, to)
	}

	// Split the committed schedule at the new horizon.
	frozen := make(map[media.VideoID]*schedule.FileSchedule)
	reqs := make(map[media.VideoID][]workload.Request)
	res := &EpochResult{Epoch: s.epoch, Horizon: to, Admitted: len(s.pending)}
	for _, vid := range s.committed.VideoIDs() {
		pre, replan, err := splitFile(s.committed.File(vid), to)
		if err != nil {
			return nil, err
		}
		if len(pre.Deliveries) > 0 || len(pre.Residencies) > 0 {
			frozen[vid] = pre
			res.FrozenDeliveries += len(pre.Deliveries)
			res.FrozenResidencies += len(pre.Residencies)
		}
		if len(replan) > 0 {
			reqs[vid] = replan
			res.Replanned += len(replan)
		}
	}
	for _, r := range s.pending {
		reqs[r.Video] = append(reqs[r.Video], r)
	}
	for _, rs := range reqs {
		workload.SortChronological(rs)
	}

	// Every file with frozen history or live requests needs a schedule;
	// files with only frozen history carry their prefix through unchanged.
	videoSet := make(map[media.VideoID]bool, len(frozen)+len(reqs))
	for vid := range frozen {
		videoSet[vid] = true
	}
	for vid := range reqs {
		videoSet[vid] = true
	}
	videos := make([]media.VideoID, 0, len(videoSet))
	for vid := range videoSet {
		videos = append(videos, vid)
	}
	sort.Slice(videos, func(i, j int) bool { return videos[i] < videos[j] })

	next, err := s.phase1(ctx, videos, reqs, frozen)
	if err != nil {
		return nil, err
	}

	ledger := occupancy.FromSchedule(s.m.Book().Topology(), s.m.Catalog(), next)
	res.Overflows = len(ledger.AllOverflows())
	if res.Overflows > 0 {
		rr, err := sorp.ResolveContext(ctx, s.m, next, reqs, sorp.Options{
			Metric:  s.cfg.Metric,
			Policy:  s.cfg.Policy,
			Frozen:  frozen,
			Workers: s.cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("horizon: epoch %d resolution: %w", s.epoch, err)
		}
		next = rr.Schedule
		res.Victims = rr.Victims
	}

	if err := next.Validate(s.m.Book().Topology(), s.m.Catalog(), s.accepted); err != nil {
		return nil, fmt.Errorf("horizon: epoch %d produced invalid schedule: %w", s.epoch, err)
	}
	if l := occupancy.FromSchedule(s.m.Book().Topology(), s.m.Catalog(), next); len(l.AllOverflows()) > 0 {
		return nil, fmt.Errorf("horizon: epoch %d leaves %d overflows unresolved", s.epoch, len(l.AllOverflows()))
	}

	// Journal the epoch boundary only after the plan extension succeeded:
	// replaying the log re-runs exactly the Advances that committed, and a
	// failed append aborts the epoch with the previous state intact.
	if s.journal != nil {
		if err := s.journalOp(walOp{Op: opAdvance, To: to}); err != nil {
			return nil, fmt.Errorf("horizon: journal advance: %w", err)
		}
	}

	res.Cost = s.m.ScheduleCost(next)
	s.committed = next
	s.cost = res.Cost
	s.horizon = to
	s.epoch++
	s.pending = nil
	s.pendingBytes = 0
	s.epochClock = simtime.Max(s.clock, to)
	s.maybeSnapshotLocked()
	return res, nil
}

// phase1 fans the per-file individual scheduling out over the shared
// bounded worker pool (internal/parallel). File schedules are independent
// in phase 1 (unbounded-storage assumption, paper §3.2), so this is safe;
// results are assembled in video order, keeping the outcome byte-identical
// to a sequential run.
func (s *Service) phase1(ctx context.Context, videos []media.VideoID,
	reqs map[media.VideoID][]workload.Request, frozen map[media.VideoID]*schedule.FileSchedule) (*schedule.Schedule, error) {

	fss := make([]*schedule.FileSchedule, len(videos))
	errs := make([]error, len(videos))
	if err := parallel.Do(ctx, s.cfg.Workers, len(videos), func(i int) {
		vid := videos[i]
		fss[i], errs[i] = ivs.ScheduleFile(s.m, vid, reqs[vid], ivs.Options{
			Policy: s.cfg.Policy,
			Frozen: frozen[vid],
		})
	}); err != nil {
		return nil, fmt.Errorf("horizon: epoch %d phase 1 aborted: %w", s.epoch, err)
	}

	next := schedule.New()
	for i, vid := range videos {
		if errs[i] != nil {
			return nil, fmt.Errorf("horizon: epoch %d phase 1 for video %d: %w", s.epoch, vid, errs[i])
		}
		next.Put(fss[i])
	}
	return next, nil
}

// splitFile divides one committed file schedule at the horizon. Deliveries
// starting before it and residencies loaded before it freeze; the rest are
// discarded and their requests returned for re-planning. The split is
// closed under references — a frozen residency's feed starts at its load
// time and is therefore frozen, and a frozen delivery's source residency
// loads no later than the delivery starts and is therefore frozen — so the
// frozen records form a stable index prefix. A frozen residency keeps only
// its frozen readers: its service list is filtered to frozen deliveries
// and its span clamped to the latest surviving service (the discarded
// future readers re-enter the pool, where the copy remains available as a
// free extension source). Pre-placed copies keep their planned span.
func splitFile(fs *schedule.FileSchedule, horizon simtime.Time) (*schedule.FileSchedule, []workload.Request, error) {
	fd := 0
	for fd < len(fs.Deliveries) && fs.Deliveries[fd].Start < horizon {
		fd++
	}
	fr := 0
	for fr < len(fs.Residencies) && fs.Residencies[fr].Load < horizon {
		fr++
	}
	// The committed schedule is a concatenation of chronologically sorted
	// epoch batches, each entirely at or after the horizon its predecessor
	// froze at, so the frozen records must form a prefix. Verify rather
	// than assume: a violation means the commit invariant broke.
	for i := fd; i < len(fs.Deliveries); i++ {
		if fs.Deliveries[i].Start < horizon {
			return nil, nil, fmt.Errorf("horizon: video %d delivery %d starts at %v behind frozen prefix ending before %v",
				fs.Video, i, fs.Deliveries[i].Start, horizon)
		}
	}
	for j := fr; j < len(fs.Residencies); j++ {
		if fs.Residencies[j].Load < horizon {
			return nil, nil, fmt.Errorf("horizon: video %d residency %d loads at %v behind frozen prefix ending before %v",
				fs.Video, j, fs.Residencies[j].Load, horizon)
		}
	}

	pre := &schedule.FileSchedule{Video: fs.Video}
	for i := 0; i < fd; i++ {
		d := fs.Deliveries[i]
		if d.SourceResidency != schedule.NoResidency && d.SourceResidency >= fr {
			return nil, nil, fmt.Errorf("horizon: video %d frozen delivery %d draws from un-frozen residency %d",
				fs.Video, i, d.SourceResidency)
		}
		d.Route = d.Route.Clone()
		pre.Deliveries = append(pre.Deliveries, d)
	}
	for j := 0; j < fr; j++ {
		c := fs.Residencies[j]
		if c.FedBy != schedule.PrePlacedFeed && c.FedBy >= fd {
			return nil, nil, fmt.Errorf("horizon: video %d frozen residency %d fed by un-frozen delivery %d",
				fs.Video, j, c.FedBy)
		}
		kept := make([]int, 0, len(c.Services))
		last := c.Load
		for _, di := range c.Services {
			if di >= fd {
				continue // future reader: torn up and re-planned
			}
			kept = append(kept, di)
			if fs.Deliveries[di].Start > last {
				last = fs.Deliveries[di].Start
			}
		}
		c.Services = kept
		if c.FedBy != schedule.PrePlacedFeed {
			c.LastService = last
		}
		pre.Residencies = append(pre.Residencies, c)
	}

	var replan []workload.Request
	for i := fd; i < len(fs.Deliveries); i++ {
		d := fs.Deliveries[i]
		replan = append(replan, workload.Request{User: d.User, Video: d.Video, Start: d.Start})
	}
	return pre, replan, nil
}
