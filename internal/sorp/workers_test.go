package sorp

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// TestResolveWorkersByteIdentical is the determinism property for the
// concurrent candidate evaluation: on seeded random workloads with real
// overflow pressure, a Resolve with any worker count must produce the same
// bytes as the sequential run — same resolved schedule AND the same victim
// sequence (heat, overhead, window included), since the selection walks the
// candidates in overflow/ref order with a total order regardless of which
// worker finished first. Run under -race in CI to surface clone-sharing
// races.
func TestResolveWorkersByteIdentical(t *testing.T) {
	for _, seed := range []int64{3, 11, 12} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, pricing.PerGBSec(5), pricing.PerGB(500), seed)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{
				Alpha: 0.1, Window: 6 * simtime.Hour, Seed: seed + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := schedule.New()
			for vid, rs := range reqs.ByVideo() {
				fs, err := ivs.ScheduleFile(rig.Model, vid, rs, ivs.Options{})
				if err != nil {
					t.Fatal(err)
				}
				s.Put(fs)
			}
			run := func(workers int) string {
				res, err := Resolve(rig.Model, s, reqs.ByVideo(), Options{Workers: workers})
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				blob, err := json.Marshal(struct {
					Schedule interface{}
					Victims  []Victim
				}{res.Schedule, res.Victims})
				if err != nil {
					t.Fatal(err)
				}
				return string(blob)
			}
			want := run(1)
			for _, workers := range []int{0, 2, 4, 16} {
				if got := run(workers); got != want {
					t.Errorf("Workers=%d resolution differs from sequential run", workers)
				}
			}
		})
	}
}
